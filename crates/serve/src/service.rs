//! The multi-threaded planning service.
//!
//! A fixed pool of worker threads consumes [`PlanRequest`]s from one MPMC
//! queue (the crossbeam shim's unbounded channel). Each worker resolves a
//! request through the shared [`ShardedCache`]: the first request for a
//! fingerprint plans it, concurrent identical requests wait on the
//! single-flight slot, and later requests are pure cache hits returning the
//! very same `Arc<Plan>` — byte-identical to the cold result by
//! construction.

use crate::cache::{CacheStats, ShardedCache};
use crate::request::PlanRequest;
use crossbeam::channel::{self, Sender};
use diffusionpipe_core::{simulate_plan, FaultSpec, Plan, PlanError, SimulationOutcome};
use dpipe_trace::{Span, SpanId, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// What one request resolved to: a shared plan or a planning error.
/// Deterministic errors are cached too (a misconfigured request storm plans
/// exactly once); transient [`PlanError::Internal`] outcomes are delivered
/// but never retained (see [`PlanError::is_deterministic`]).
pub type PlanOutcome = Result<Arc<Plan>, PlanError>;

/// The service itself could not take or finish a request (as opposed to a
/// [`PlanError`], which is a verdict about the request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Every worker exited, so the queue has no consumer.
    WorkersGone,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::WorkersGone => f.write_str("planning worker pool is gone"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A submission the service refused, with the request handed back so the
/// caller can retry, reroute or report it (never silently dropped).
#[derive(Debug)]
pub struct SubmitRejected {
    /// The unplanned request, returned to the caller.
    pub request: PlanRequest,
    /// Why the service refused it.
    pub why: ServiceError,
}

/// Sizing knobs for [`PlanService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the pool (minimum 1).
    pub workers: usize,
    /// Shards in the plan cache (minimum 1).
    pub cache_shards: usize,
    /// Total finished entries the plan cache may hold across all shards;
    /// past it the least-recently-used entry is evicted. `usize::MAX`
    /// disables the bound. The default (4096) keeps a networked service's
    /// memory bounded under a stream of unique specs.
    pub cache_capacity: usize,
    /// Threads each worker fans one plan's per-config search across
    /// (`Planner::with_parallelism`). The default of 1 keeps batch
    /// throughput maximal — parallelism across requests beats parallelism
    /// within one. [`PlanService::plan_one`] overrides this with the pool
    /// width, since a single request would otherwise leave every other
    /// worker idle.
    pub plan_parallelism: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_shards: 16,
            cache_capacity: 4096,
            plan_parallelism: 1,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` threads and the default shard count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// The service's answer to one submitted request.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// Submission index, for reordering out-of-order completions.
    pub index: usize,
    /// The request's content fingerprint (the cache key).
    pub fingerprint: u64,
    /// The request's human-readable label.
    pub label: String,
    /// The plan, or why planning failed.
    pub outcome: PlanOutcome,
    /// True when this response was served from the cache (including waiting
    /// on an in-flight identical request) rather than planned here.
    pub cache_hit: bool,
}

/// The service's answer to one simulation: the replay outcome, the plan
/// it replayed (when planning succeeded), and whether that plan came from
/// the cache.
#[derive(Debug)]
pub struct SimulateResponse {
    /// The fault-injected replay (and degraded re-plan), or why it failed.
    pub outcome: Result<SimulationOutcome, PlanError>,
    /// The plan that was (or would have been) replayed.
    pub plan: Option<Arc<Plan>>,
    /// Whether the simulated plan was a cache hit.
    pub cache_hit: bool,
}

/// Where a submitted request's spans should go: the tracer (shared with
/// whoever is assembling the request's trace — e.g. the HTTP frontend) and
/// the span to parent the service's work under. Cheap to clone (the tracer
/// is an `Arc` handle).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    pub tracer: Tracer,
    pub parent: Option<SpanId>,
}

struct Job {
    index: usize,
    request: PlanRequest,
    /// Intra-plan search threads for this job (see
    /// [`ServiceConfig::plan_parallelism`]).
    parallelism: usize,
    /// Span destination for this job's service/planner work, if traced.
    trace: Option<TraceCtx>,
    reply: Sender<PlanResponse>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// A worker pool + sharded plan cache serving [`PlanRequest`]s.
///
/// Dropping the service closes the queue and joins every worker.
pub struct PlanService {
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<ShardedCache<PlanOutcome>>,
    /// Jobs submitted but not yet answered (queued + being planned).
    pending: Arc<AtomicUsize>,
    plan_parallelism: usize,
}

impl PlanService {
    /// Starts the worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let cache = Arc::new(ShardedCache::with_capacity(
            config.cache_shards,
            config.cache_capacity,
        ));
        let pending = Arc::new(AtomicUsize::new(0));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let cache = Arc::clone(&cache);
                let pending = Arc::clone(&pending);
                std::thread::Builder::new()
                    .name(format!("dpipe-serve-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let fingerprint = job.request.fingerprint();
                            let label = job.request.label();
                            let request = job.request;
                            // Contain any unexpected planner panic: a dead
                            // worker would silently shrink the pool and
                            // strand the caller waiting on the reply.
                            let parallelism = job.parallelism;
                            let trace = job.trace;
                            let mut service_span = match &trace {
                                Some(t) => t.tracer.child_span("plan_service", t.parent),
                                None => Span::none(),
                            };
                            let service_span_id = service_span.id();
                            let lookup_started = Instant::now();
                            let (outcome, resolution) = cache.get_or_compute_observed(
                                fingerprint,
                                || {
                                    let mut execute_span = match &trace {
                                        Some(t) => {
                                            t.tracer.child_span("plan_execute", service_span_id)
                                        }
                                        None => Span::none(),
                                    };
                                    let execute_id = execute_span.id();
                                    let tracer = trace
                                        .as_ref()
                                        .map(|t| t.tracer.clone())
                                        .unwrap_or_default();
                                    let outcome = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            request
                                                .plan_traced(parallelism, &tracer, execute_id)
                                                .map(Arc::new)
                                        }),
                                    )
                                    .unwrap_or_else(|payload| {
                                        Err(PlanError::Internal(format!(
                                            "planner panicked: {}",
                                            panic_message(&payload)
                                        )))
                                    });
                                    execute_span.set("ok", outcome.is_ok());
                                    outcome
                                },
                                // Plans and deterministic verdicts are worth
                                // keeping; a contained panic is transient and
                                // must not poison its fingerprint forever.
                                |outcome| {
                                    outcome
                                        .as_ref()
                                        .map_or_else(PlanError::is_deterministic, |_| true)
                                },
                            );
                            let cache_hit = resolution.hit;
                            if let Some(t) = &trace {
                                // The single-flight wait happened inside the
                                // lookup; synthesize its span after the fact.
                                if let Some(waited) = resolution.waited {
                                    t.tracer.record_between(
                                        "single_flight_wait",
                                        service_span_id,
                                        lookup_started,
                                        lookup_started + waited,
                                    );
                                }
                                service_span.set("cache", if cache_hit { "hit" } else { "miss" });
                                service_span.set("evictions", resolution.evictions);
                                service_span.set("fingerprint", format!("{fingerprint:016x}"));
                                service_span.set("label", label.as_str());
                            }
                            service_span.finish();
                            // Decrement *before* replying: a caller that sees
                            // its answer must never still see itself counted
                            // in the backlog gauge.
                            pending.fetch_sub(1, Ordering::Relaxed);
                            // A dropped reply receiver just means the caller
                            // stopped listening; the plan is cached either way.
                            let _ = job.reply.send(PlanResponse {
                                index: job.index,
                                fingerprint,
                                label,
                                outcome,
                                cache_hit,
                            });
                        }
                    })
                    // dpipe-analyze: allow(no-panic) -- spawn fails only on OS thread exhaustion at startup; PlanService::new stays infallible by design
                    .expect("failed to spawn planning worker")
            })
            .collect();
        PlanService {
            queue: Some(tx),
            workers,
            cache,
            pending,
            plan_parallelism: config.plan_parallelism.max(1),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet answered (queued plus being planned) —
    /// the admission-control gauge a networked frontend sheds load on.
    pub fn queue_depth(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Enqueues one request; its [`PlanResponse`] (tagged `index`) is sent
    /// on `reply` when a worker finishes it. `parallelism` sizes the
    /// planner's intra-plan config search for this job.
    ///
    /// # Errors
    ///
    /// [`SubmitRejected`] (carrying the request back, boxed — a
    /// `PlanRequest` is a few hundred bytes and the happy path should not
    /// pay for it) when the pool has no live consumer — the request is
    /// handed back to the caller rather than silently dropped or panicked
    /// over.
    pub fn submit(
        &self,
        index: usize,
        request: PlanRequest,
        parallelism: usize,
        reply: Sender<PlanResponse>,
    ) -> Result<(), Box<SubmitRejected>> {
        self.submit_traced(index, request, parallelism, None, reply)
    }

    /// [`PlanService::submit`] with a span destination: the worker records
    /// a `plan_service` span (cache outcome, single-flight wait, evictions)
    /// and, on a miss, the planner's own phase spans under it.
    ///
    /// # Errors
    ///
    /// See [`PlanService::submit`].
    pub fn submit_traced(
        &self,
        index: usize,
        request: PlanRequest,
        parallelism: usize,
        trace: Option<TraceCtx>,
        reply: Sender<PlanResponse>,
    ) -> Result<(), Box<SubmitRejected>> {
        let Some(queue) = self.queue.as_ref() else {
            return Err(Box::new(SubmitRejected {
                request,
                why: ServiceError::WorkersGone,
            }));
        };
        let job = Job {
            index,
            request,
            parallelism: parallelism.max(1),
            trace,
            reply,
        };
        self.pending.fetch_add(1, Ordering::Relaxed);
        if let Err(send_error) = queue.send(job) {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Err(Box::new(SubmitRejected {
                request: send_error.0.request,
                why: ServiceError::WorkersGone,
            }));
        }
        Ok(())
    }

    /// Plans a batch of requests across the pool, blocking until all are
    /// done. Responses come back in submission order. Requests the service
    /// could not finish (a lost worker, a closed queue) come back with a
    /// [`PlanError::Internal`] outcome instead of panicking the caller.
    pub fn plan_batch(&self, requests: Vec<PlanRequest>) -> Vec<PlanResponse> {
        self.plan_batch_inner(requests, self.plan_parallelism, None)
    }

    /// A synthesized response for a request the service lost on the floor.
    fn lost_response(index: usize, request: &PlanRequest, why: &ServiceError) -> PlanResponse {
        PlanResponse {
            index,
            fingerprint: request.fingerprint(),
            label: request.label(),
            outcome: Err(PlanError::Internal(why.to_string())),
            cache_hit: false,
        }
    }

    fn plan_batch_inner(
        &self,
        requests: Vec<PlanRequest>,
        parallelism: usize,
        trace: Option<TraceCtx>,
    ) -> Vec<PlanResponse> {
        let (tx, rx) = channel::unbounded();
        let n = requests.len();
        let mut responses: Vec<PlanResponse> = Vec::with_capacity(n);
        for (index, request) in requests.into_iter().enumerate() {
            if let Err(rejected) =
                self.submit_traced(index, request, parallelism, trace.clone(), tx.clone())
            {
                responses.push(Self::lost_response(index, &rejected.request, &rejected.why));
            }
        }
        drop(tx);
        // The reply channel closes once every submitted job is answered (or
        // every worker died); both end this loop without a panic.
        while responses.len() < n {
            match rx.recv() {
                Ok(response) => responses.push(response),
                Err(_) => break,
            }
        }
        // Any index still missing was consumed by a worker that died
        // mid-plan: answer it as an internal error rather than hanging or
        // panicking the caller.
        let mut seen = vec![false; n];
        for r in &responses {
            if r.index < n {
                seen[r.index] = true;
            }
        }
        for (index, seen) in seen.into_iter().enumerate() {
            if !seen {
                responses.push(PlanResponse {
                    index,
                    fingerprint: 0,
                    label: String::new(),
                    outcome: Err(PlanError::Internal(
                        "a planning worker died before answering".to_owned(),
                    )),
                    cache_hit: false,
                });
            }
        }
        responses.sort_by_key(|r| r.index);
        responses
    }

    /// Plans one request, blocking until done. A single request would
    /// leave the rest of the pool idle, so its config search fans across
    /// as many threads as the pool has workers — `dpipe plan` saturates
    /// cores even for one request, and (by planner determinism) returns
    /// exactly the plan a sequential search would.
    pub fn plan_one(&self, request: PlanRequest) -> PlanResponse {
        self.plan_one_with_parallelism(request, self.worker_count().max(self.plan_parallelism))
    }

    /// Plans one request with an explicit intra-plan parallelism. A
    /// networked frontend passes 1: under concurrent load the pool is
    /// saturated across requests, and fanning each plan's config search
    /// out as well would only add contention.
    pub fn plan_one_with_parallelism(
        &self,
        request: PlanRequest,
        parallelism: usize,
    ) -> PlanResponse {
        self.plan_one_traced(request, parallelism, None)
    }

    /// [`PlanService::plan_one_with_parallelism`] with a span destination
    /// (see [`PlanService::submit_traced`]).
    pub fn plan_one_traced(
        &self,
        request: PlanRequest,
        parallelism: usize,
        trace: Option<TraceCtx>,
    ) -> PlanResponse {
        let mut responses = self.plan_batch_inner(vec![request], parallelism, trace);
        debug_assert_eq!(responses.len(), 1);
        responses.pop().unwrap_or_else(|| PlanResponse {
            index: 0,
            fingerprint: 0,
            label: String::new(),
            outcome: Err(PlanError::Internal(
                "service produced no response".to_owned(),
            )),
            cache_hit: false,
        })
    }

    /// Plans `request` through the cache, then replays the plan under
    /// `faults`. When the fault spec drops machines, the degraded re-plan
    /// is routed back through this service — a repeated simulation of the
    /// same drop re-plans exactly once, and concurrent identical
    /// simulations share the single-flight slot.
    pub fn simulate_traced(
        &self,
        request: &PlanRequest,
        faults: &FaultSpec,
        parallelism: usize,
        trace: Option<TraceCtx>,
    ) -> SimulateResponse {
        let planned = self.plan_one_traced(request.clone(), parallelism, trace.clone());
        let plan = match planned.outcome {
            Ok(plan) => plan,
            Err(e) => {
                return SimulateResponse {
                    outcome: Err(e),
                    plan: None,
                    cache_hit: planned.cache_hit,
                }
            }
        };
        let (tracer, parent) = match &trace {
            Some(ctx) => (ctx.tracer.clone(), ctx.parent),
            None => (Tracer::off(), None),
        };
        let outcome = simulate_plan(request.spec(), &plan, faults, &tracer, parent, |degraded| {
            let degraded_request = PlanRequest::from_spec(degraded.clone())
                .map_err(|e| PlanError::InvalidRequest(e.to_string()))?;
            let response = self.plan_one_traced(degraded_request, parallelism, trace.clone());
            response.outcome.map(|p| (*p).clone())
        });
        SimulateResponse {
            outcome,
            plan: Some(plan),
            cache_hit: planned.cache_hit,
        }
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached plan and resets the counters.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The cached outcome for a fingerprint, if planning finished for it.
    pub fn cached(&self, fingerprint: u64) -> Option<PlanOutcome> {
        self.cache.get(fingerprint)
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;

    fn request(batch: u32) -> PlanRequest {
        PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            batch,
        )
    }

    #[test]
    fn plan_one_matches_sequential_planning() {
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        let response = service.plan_one(request(64));
        assert!(!response.cache_hit);
        let served = response.outcome.unwrap();
        let sequential = request(64).plan().unwrap();
        assert_eq!(served.summary(), sequential.summary());
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        let batches = [96u32, 64, 128, 64];
        let responses = service.plan_batch(batches.iter().map(|&b| request(b)).collect());
        assert_eq!(responses.len(), batches.len());
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.label.ends_with(&format!("/b{}", batches[i])));
        }
        // The duplicate batch-64 request is a hit for whichever finished
        // second.
        assert_eq!(responses.iter().filter(|r| r.cache_hit).count(), 1);
        assert_eq!(service.cache_stats().misses, 3);
    }

    #[test]
    fn planning_errors_are_cached_outcomes() {
        let service = PlanService::new(ServiceConfig {
            workers: 1,
            cache_shards: 1,
            ..ServiceConfig::default()
        });
        let mut broken_model = zoo::stable_diffusion_v2_1();
        broken_model.components.retain(|c| !c.is_trainable());
        let bad = PlanRequest::new(broken_model, ClusterSpec::single_node(8), 64);
        let cold = service.plan_one(bad.clone());
        assert!(matches!(cold.outcome, Err(PlanError::InvalidModel(_))));
        assert!(!cold.cache_hit);
        let warm = service.plan_one(bad);
        assert!(matches!(warm.outcome, Err(PlanError::InvalidModel(_))));
        assert!(warm.cache_hit);
    }

    #[test]
    fn queue_depth_returns_to_zero() {
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        assert_eq!(service.queue_depth(), 0);
        let _ = service.plan_one(request(64));
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn cache_capacity_bounds_resident_plans() {
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 1,
            cache_capacity: 2,
            ..ServiceConfig::default()
        });
        for batch in [32u32, 64, 96, 128] {
            let _ = service.plan_one(request(batch));
        }
        let stats = service.cache_stats();
        assert!(stats.entries <= 2, "entries: {}", stats.entries);
        assert!(stats.evictions >= 2, "evictions: {}", stats.evictions);
    }

    #[test]
    fn traced_requests_record_service_and_planner_spans() {
        use dpipe_trace::AttrValue;
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        let tracer = Tracer::new();
        let ctx = || {
            Some(TraceCtx {
                tracer: tracer.clone(),
                parent: None,
            })
        };
        let cold = service.plan_one_traced(request(64), 1, ctx());
        assert!(cold.outcome.is_ok() && !cold.cache_hit);
        let trace = tracer.take();
        let svc = trace.find("plan_service").expect("service span");
        assert!(
            matches!(svc.attr("cache"), Some(AttrValue::Str(s)) if s == "miss"),
            "{svc:?}"
        );
        let exec = trace.find("plan_execute").expect("execute span");
        assert_eq!(exec.parent, Some(svc.id));
        let plan_span = trace.find("plan").expect("planner root span");
        assert_eq!(plan_span.parent, Some(exec.id));
        // A warm repeat is a pure cache hit: a service span, no execution.
        let warm = service.plan_one_traced(request(64), 1, ctx());
        assert!(warm.cache_hit);
        let trace = tracer.take();
        let svc = trace.find("plan_service").expect("service span");
        assert!(
            matches!(svc.attr("cache"), Some(AttrValue::Str(s)) if s == "hit"),
            "{svc:?}"
        );
        assert!(trace.find("plan_execute").is_none());
        // Untraced submissions record nothing.
        let _ = service.plan_one(request(96));
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn drop_joins_idle_workers_quickly() {
        let service = PlanService::new(ServiceConfig {
            workers: 4,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        drop(service); // must not hang
    }
}
