//! Sharded single-flight cache keyed by 64-bit content fingerprints.
//!
//! The service keeps one entry per distinct [`PlanRequest`] fingerprint.
//! Keys spread over independent shards so concurrent workers touching
//! different requests never contend on one lock, and each shard implements
//! *single-flight* semantics: the first caller to ask for a key computes the
//! value while later callers for the same key block on the shard's condvar
//! and receive the finished value — a burst of identical requests plans
//! exactly once.
//!
//! Two policies keep the cache sound under open-ended networked traffic:
//!
//! * **Bounded residency.** Each shard holds at most
//!   [`ShardedCache::per_shard_capacity`] finished entries; inserting past
//!   that evicts the least-recently-used finished entry (in-flight slots are
//!   never evicted). A stream of millions of unique specs therefore occupies
//!   bounded memory instead of growing without limit.
//! * **Retention policy.** [`ShardedCache::get_or_compute_with`] takes a
//!   `retain` predicate; values it rejects (e.g. transient
//!   `PlanError::Internal` outcomes) are returned to the caller but *not*
//!   kept, so a key is never permanently poisoned by a one-off failure. The
//!   next caller for that key simply recomputes.
//!
//! [`PlanRequest`]: crate::PlanRequest

use dpipe_sync::{LockRecoverTagged, TaggedGuard, WaitRecoverTagged};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// One cached entry: either being computed by some caller, or done.
enum Slot<V> {
    InFlight,
    /// A finished value plus its last-touched stamp (for LRU eviction).
    Ready(V, u64),
}

/// Lock-order witness tag for [`Shard::map`]; must match the static
/// pass's `crate::Type::field` key so observed orders check against
/// the derived graph.
const SHARD_MAP_TAG: &str = "serve::Shard::map";

struct Shard<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    ready: Condvar,
}

/// Hit/miss/occupancy counters for a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a finished or in-flight entry (no recompute).
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
    /// Finished entries dropped to stay under the per-shard capacity.
    pub evictions: u64,
    /// Computed values the retention policy declined to keep (transient
    /// errors): delivered to their caller, never resident.
    pub uncached: u64,
}

impl CacheStats {
    /// Fraction of lookups that were hits (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How one [`ShardedCache::get_or_compute_observed`] lookup resolved —
/// the per-call view the aggregate [`CacheStats`] cannot give (tracing
/// wants *this* request's wait, not a global counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheResolution {
    /// `true` when the value came from the cache (finished entry, or an
    /// in-flight computation this caller waited on).
    pub hit: bool,
    /// Time spent blocked behind another caller's in-flight computation
    /// of the same key, if any (single-flight wait).
    pub waited: Option<std::time::Duration>,
    /// Finished LRU entries evicted while publishing this value.
    pub evictions: u64,
}

/// A fixed-shard concurrent cache with single-flight computation, bounded
/// per-shard capacity (LRU eviction) and a per-call retention policy.
///
/// Values must be cheap to clone (the service stores `Arc`ed plans).
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    /// Finished entries each shard may hold; `usize::MAX` means unbounded.
    per_shard_capacity: usize,
    /// Monotonic LRU clock shared by every shard.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    uncached: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates an unbounded cache with `num_shards` independent shards
    /// (minimum 1).
    pub fn new(num_shards: usize) -> Self {
        Self::with_capacity(num_shards, usize::MAX)
    }

    /// Creates a cache whose `total_capacity` finished entries spread over
    /// `num_shards` shards (each shard gets the rounded-up share, minimum
    /// 1). Pass `usize::MAX` (or use [`ShardedCache::new`]) for unbounded.
    pub fn with_capacity(num_shards: usize, total_capacity: usize) -> Self {
        let num_shards = num_shards.max(1);
        let per_shard_capacity = if total_capacity == usize::MAX {
            usize::MAX
        } else {
            total_capacity.div_ceil(num_shards).max(1)
        };
        let shards = (0..num_shards)
            .map(|_| Shard {
                map: Mutex::new(HashMap::new()),
                ready: Condvar::new(),
            })
            .collect();
        ShardedCache {
            shards,
            per_shard_capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncached: AtomicU64::new(0),
        }
    }

    /// Finished entries one shard may hold before evicting.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    fn shard(&self, key: u64) -> &Shard<V> {
        // The fingerprint is already well-mixed (FNV-1a), so plain modulo
        // spreads keys evenly.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the finished value stored under `key`, if any. In-flight
    /// entries read as absent. Does not touch the hit/miss counters.
    pub fn get(&self, key: u64) -> Option<V> {
        let stamp = self.tick();
        let mut map = self.shard(key).map.lock_recover_tagged(SHARD_MAP_TAG);
        match map.get_mut(&key) {
            Some(Slot::Ready(v, touched)) => {
                *touched = stamp;
                Some(v.clone())
            }
            _ => None,
        }
    }

    /// Returns the value for `key`, computing it with `compute` on first
    /// use, and always retaining the result (subject to capacity).
    ///
    /// The boolean is `true` for a cache hit — including callers that
    /// arrived while another thread was computing the same key and merely
    /// waited for it (they did no planning work themselves). If `compute`
    /// panics, the in-flight marker is removed and waiters are woken so a
    /// later caller can retry; the panic propagates to the computing caller.
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> V) -> (V, bool) {
        self.get_or_compute_with(key, compute, |_| true)
    }

    /// [`ShardedCache::get_or_compute`] with a retention policy: when
    /// `retain` rejects the freshly computed value, the value is still
    /// returned (and the lookup counts as a miss) but the key is left
    /// vacant, so the next caller recomputes instead of being served a
    /// transient failure forever. Waiters that piled up behind the
    /// in-flight slot wake, find the key vacant and recompute — the
    /// single-flight guarantee only extends to outcomes worth keeping.
    pub fn get_or_compute_with(
        &self,
        key: u64,
        compute: impl FnOnce() -> V,
        retain: impl FnOnce(&V) -> bool,
    ) -> (V, bool) {
        let (value, resolution) = self.get_or_compute_observed(key, compute, retain);
        (value, resolution.hit)
    }

    /// [`ShardedCache::get_or_compute_with`] returning the full per-call
    /// [`CacheResolution`]: whether it hit, how long it blocked on another
    /// caller's in-flight computation, and how many entries publishing the
    /// value evicted.
    pub fn get_or_compute_observed(
        &self,
        key: u64,
        compute: impl FnOnce() -> V,
        retain: impl FnOnce(&V) -> bool,
    ) -> (V, CacheResolution) {
        let shard = self.shard(key);
        let mut wait_started: Option<std::time::Instant> = None;
        let mut map = shard.map.lock_recover_tagged(SHARD_MAP_TAG);
        loop {
            match map.get_mut(&key) {
                Some(Slot::Ready(v, touched)) => {
                    *touched = self.clock.fetch_add(1, Ordering::Relaxed);
                    let v = v.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (
                        v,
                        CacheResolution {
                            hit: true,
                            waited: wait_started.map(|s| s.elapsed()),
                            evictions: 0,
                        },
                    );
                }
                Some(Slot::InFlight) => {
                    wait_started.get_or_insert_with(std::time::Instant::now);
                    map = shard.ready.wait_recover_tagged(map);
                }
                None => break,
            }
        }
        map.insert(key, Slot::InFlight);
        drop(map);

        struct Unpublish<'a, V> {
            shard: &'a Shard<V>,
            key: u64,
        }
        impl<V> Drop for Unpublish<'_, V> {
            fn drop(&mut self) {
                // Only reached on unwind out of `compute`: clear the marker
                // (recovering the lock even mid-panic — the in-flight slot
                // must go away) and wake waiters so they can retry.
                self.shard
                    .map
                    .lock_recover_tagged(SHARD_MAP_TAG)
                    .remove(&self.key);
                self.shard.ready.notify_all();
            }
        }

        let guard = Unpublish { shard, key };
        let value = compute();
        std::mem::forget(guard);

        let mut map = shard.map.lock_recover_tagged(SHARD_MAP_TAG);
        let mut evicted = 0u64;
        if retain(&value) {
            map.insert(key, Slot::Ready(value.clone(), self.tick()));
            evicted = self.evict_over_capacity(&mut map, key);
        } else {
            map.remove(&key);
            self.uncached.fetch_add(1, Ordering::Relaxed);
        }
        drop(map);
        shard.ready.notify_all();
        self.misses.fetch_add(1, Ordering::Relaxed);
        (
            value,
            CacheResolution {
                hit: false,
                waited: wait_started.map(|s| s.elapsed()),
                evictions: evicted,
            },
        )
    }

    /// Evicts least-recently-used finished entries (never in-flight slots,
    /// never `keep`) until the shard is back under capacity; returns how
    /// many entries were dropped.
    fn evict_over_capacity(&self, map: &mut HashMap<u64, Slot<V>>, keep: u64) -> u64 {
        let mut evicted = 0u64;
        while map.len() > self.per_shard_capacity {
            let victim = map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(_, touched) if *k != keep => Some((*k, *touched)),
                    _ => None,
                })
                .min_by_key(|&(_, touched)| touched)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    evicted += 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything else is in-flight: nothing evictable.
                None => break,
            }
        }
        evicted
    }

    /// Number of distinct keys resident (finished or in-flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock_recover_tagged(SHARD_MAP_TAG).len())
            .sum()
    }

    /// True when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            uncached: self.uncached.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry and resets the counters (entries being computed
    /// right now are unaffected: their publish re-inserts them).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map: TaggedGuard<'_, HashMap<u64, Slot<V>>> =
                shard.map.lock_recover_tagged(SHARD_MAP_TAG);
            map.retain(|_, slot| matches!(slot, Slot::InFlight));
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.uncached.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn computes_once_then_hits() {
        let cache = ShardedCache::new(4);
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            42u64
        };
        assert_eq!(cache.get_or_compute(7, compute), (42, false));
        assert_eq!(cache.get_or_compute(7, || unreachable!()), (42, true));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.evictions, stats.uncached), (0, 0));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn get_only_sees_finished_entries() {
        let cache: ShardedCache<u64> = ShardedCache::new(2);
        assert_eq!(cache.get(1), None);
        cache.get_or_compute(1, || 10);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(2), None);
    }

    #[test]
    fn concurrent_identical_keys_single_flight() {
        let cache = Arc::new(ShardedCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    cache.get_or_compute(99, move || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the in-flight slot long enough for the other
                        // threads to arrive and block.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        7u64
                    })
                })
            })
            .collect();
        let results: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "planned more than once");
        assert!(results.iter().all(|(v, _)| *v == 7));
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn panicking_compute_clears_the_slot() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(1));
        let c = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            c.get_or_compute(5, || panic!("boom"));
        });
        assert!(panicker.join().is_err());
        // The key is retryable and the cache is not wedged.
        assert_eq!(cache.get_or_compute(5, || 11), (11, false));
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ShardedCache::new(4);
        cache.get_or_compute(1, || 1u64);
        cache.get_or_compute(2, || 2u64);
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn capacity_bounds_residency_with_lru_eviction() {
        // One shard, three finished entries max.
        let cache = ShardedCache::with_capacity(1, 3);
        assert_eq!(cache.per_shard_capacity(), 3);
        for k in 0..3u64 {
            cache.get_or_compute(k, || k);
        }
        // Touch 0 so 1 becomes the LRU entry, then overflow.
        assert_eq!(cache.get(0), Some(0));
        cache.get_or_compute(3, || 3);
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(cache.get(1), None, "LRU key evicted");
        assert_eq!(cache.get(0), Some(0));
        assert_eq!(cache.get(3), Some(3));
        // A stream of unique keys stays bounded forever.
        for k in 100..1100u64 {
            cache.get_or_compute(k, || k);
        }
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn capacity_spreads_over_shards() {
        let cache = ShardedCache::with_capacity(4, 8);
        assert_eq!(cache.per_shard_capacity(), 2);
        for k in 0..64u64 {
            cache.get_or_compute(k, || k);
        }
        assert!(cache.stats().entries <= 8);
    }

    #[test]
    fn rejected_values_are_returned_but_not_resident() {
        let cache: ShardedCache<Result<u64, String>> = ShardedCache::new(2);
        let (v, hit) = cache.get_or_compute_with(9, || Err("transient".to_owned()), |v| v.is_ok());
        assert_eq!(v, Err("transient".to_owned()));
        assert!(!hit);
        assert_eq!(cache.get(9), None, "transient outcome must not stick");
        assert_eq!(cache.stats().uncached, 1);
        // The key recovers: a later successful compute is cached normally.
        let (v, hit) = cache.get_or_compute_with(9, || Ok(5), |v| v.is_ok());
        assert_eq!((v, hit), (Ok(5), false));
        assert_eq!(cache.get(9), Some(Ok(5)));
        assert!(cache.get_or_compute_with(9, || unreachable!(), |_| true).1);
    }

    #[test]
    fn observed_resolution_reports_wait_and_evictions() {
        // Publishing over capacity reports the evictions it caused.
        let cache = ShardedCache::with_capacity(1, 1);
        let (_, r) = cache.get_or_compute_observed(1, || 1u64, |_| true);
        assert_eq!((r.hit, r.waited, r.evictions), (false, None, 0));
        let (_, r) = cache.get_or_compute_observed(2, || 2u64, |_| true);
        assert_eq!((r.hit, r.evictions), (false, 1));
        // A caller blocked behind an in-flight computation reports the wait.
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(1));
        let c = Arc::clone(&cache);
        let computer = std::thread::spawn(move || {
            c.get_or_compute_observed(
                9,
                || {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                    7u64
                },
                |_| true,
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (v, r) = cache.get_or_compute_observed(9, || unreachable!(), |_| true);
        assert_eq!(v, 7);
        assert!(r.hit);
        assert!(
            r.waited
                .is_some_and(|w| w >= std::time::Duration::from_millis(10)),
            "{r:?}"
        );
        let (_, r0) = computer.join().unwrap();
        assert!(!r0.hit && r0.waited.is_none(), "{r0:?}");
    }

    #[test]
    fn waiters_behind_a_rejected_value_recompute() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(1));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    cache.get_or_compute_with(
                        7,
                        move || {
                            let n = calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            n as u64
                        },
                        // Reject the very first compute, keep later ones.
                        |v| *v > 0,
                    )
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // At least one recompute happened after the rejected first value,
        // and the surviving entry is a retained one.
        assert!(calls.load(Ordering::SeqCst) >= 2);
        let resident = cache.get(7);
        assert!(resident.is_some() && resident != Some(0));
    }
}
