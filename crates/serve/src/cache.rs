//! Sharded single-flight cache keyed by 64-bit content fingerprints.
//!
//! The service keeps one entry per distinct [`PlanRequest`] fingerprint.
//! Keys spread over independent shards so concurrent workers touching
//! different requests never contend on one lock, and each shard implements
//! *single-flight* semantics: the first caller to ask for a key computes the
//! value while later callers for the same key block on the shard's condvar
//! and receive the finished value — a burst of identical requests plans
//! exactly once.
//!
//! [`PlanRequest`]: crate::PlanRequest

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// One cached entry: either being computed by some caller, or done.
enum Slot<V> {
    InFlight,
    Ready(V),
}

struct Shard<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    ready: Condvar,
}

/// Hit/miss/occupancy counters for a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a finished or in-flight entry (no recompute).
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups that were hits (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-shard concurrent cache with single-flight computation.
///
/// Values must be cheap to clone (the service stores `Arc`ed plans).
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache with `num_shards` independent shards (minimum 1).
    pub fn new(num_shards: usize) -> Self {
        let shards = (0..num_shards.max(1))
            .map(|_| Shard {
                map: Mutex::new(HashMap::new()),
                ready: Condvar::new(),
            })
            .collect();
        ShardedCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Shard<V> {
        // The fingerprint is already well-mixed (FNV-1a), so plain modulo
        // spreads keys evenly.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Returns the finished value stored under `key`, if any. In-flight
    /// entries read as absent. Does not touch the hit/miss counters.
    pub fn get(&self, key: u64) -> Option<V> {
        let map = self.shard(key).map.lock().expect("cache shard poisoned");
        match map.get(&key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Returns the value for `key`, computing it with `compute` on first use.
    ///
    /// The boolean is `true` for a cache hit — including callers that
    /// arrived while another thread was computing the same key and merely
    /// waited for it (they did no planning work themselves). If `compute`
    /// panics, the in-flight marker is removed and waiters are woken so a
    /// later caller can retry; the panic propagates to the computing caller.
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> V) -> (V, bool) {
        let shard = self.shard(key);
        let mut map = shard.map.lock().expect("cache shard poisoned");
        loop {
            match map.get(&key) {
                Some(Slot::Ready(v)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (v.clone(), true);
                }
                Some(Slot::InFlight) => {
                    map = shard.ready.wait(map).expect("cache shard poisoned");
                }
                None => break,
            }
        }
        map.insert(key, Slot::InFlight);
        drop(map);

        struct Unpublish<'a, V> {
            shard: &'a Shard<V>,
            key: u64,
        }
        impl<V> Drop for Unpublish<'_, V> {
            fn drop(&mut self) {
                // Only reached on unwind out of `compute`: clear the marker
                // (ignoring a poisoned lock — the panic is already in
                // progress) and wake waiters so they can retry.
                if let Ok(mut map) = self.shard.map.lock() {
                    map.remove(&self.key);
                }
                self.shard.ready.notify_all();
            }
        }

        let guard = Unpublish { shard, key };
        let value = compute();
        std::mem::forget(guard);

        let mut map = shard.map.lock().expect("cache shard poisoned");
        map.insert(key, Slot::Ready(value.clone()));
        drop(map);
        shard.ready.notify_all();
        self.misses.fetch_add(1, Ordering::Relaxed);
        (value, false)
    }

    /// Number of distinct keys resident (finished or in-flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Drops every entry and resets the counters (entries being computed
    /// right now are unaffected: their publish re-inserts them).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map: MutexGuard<'_, HashMap<u64, Slot<V>>> =
                shard.map.lock().expect("cache shard poisoned");
            map.retain(|_, slot| matches!(slot, Slot::InFlight));
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn computes_once_then_hits() {
        let cache = ShardedCache::new(4);
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            42u64
        };
        assert_eq!(cache.get_or_compute(7, compute), (42, false));
        assert_eq!(cache.get_or_compute(7, || unreachable!()), (42, true));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn get_only_sees_finished_entries() {
        let cache: ShardedCache<u64> = ShardedCache::new(2);
        assert_eq!(cache.get(1), None);
        cache.get_or_compute(1, || 10);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(2), None);
    }

    #[test]
    fn concurrent_identical_keys_single_flight() {
        let cache = Arc::new(ShardedCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                std::thread::spawn(move || {
                    cache.get_or_compute(99, move || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the in-flight slot long enough for the other
                        // threads to arrive and block.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        7u64
                    })
                })
            })
            .collect();
        let results: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "planned more than once");
        assert!(results.iter().all(|(v, _)| *v == 7));
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn panicking_compute_clears_the_slot() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(1));
        let c = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            c.get_or_compute(5, || panic!("boom"));
        });
        assert!(panicker.join().is_err());
        // The key is retryable and the cache is not wedged.
        assert_eq!(cache.get_or_compute(5, || 11), (11, false));
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ShardedCache::new(4);
        cache.get_or_compute(1, || 1u64);
        cache.get_or_compute(2, || 2u64);
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
