//! Concurrent planning service for DiffusionPipe.
//!
//! The planner (`diffusionpipe_core::Planner::plan`) is a one-shot,
//! single-threaded call, but a training-platform control plane asks the same
//! question thousands of times per hour across model zoos, cluster shapes
//! and batch sizes. This crate makes the five-stage planning workflow
//! (profile → partition → schedule → fill → select, paper Fig. 7) a
//! *serveable* subsystem:
//!
//! * [`PlanRequest`] — one planning question: a thin wrapper over the
//!   declarative [`dpipe_spec::PlanSpec`] with a stable content
//!   [`fingerprint`] derived from the canonical spec (built on
//!   [`ModelSpec::fingerprint`] / [`ClusterSpec::fingerprint`]);
//! * [`ShardedCache`] — a sharded plan cache with *single-flight*
//!   deduplication: a burst of identical requests plans exactly once, and
//!   every hit returns the very same `Arc<Plan>` as the cold run;
//! * [`PlanService`] — a worker pool consuming requests from one MPMC
//!   channel (the crossbeam shim), with in-order batch submission;
//! * [`SweepGrid`] / [`SweepReport`] — parallel configuration sweeps over a
//!   declarative [`dpipe_spec::SweepSpec`] (template spec + model/cluster/
//!   batch axes, mixed `a100:4,h100:4` fleets included), ranked
//!   deterministically so an N-worker sweep reproduces the sequential
//!   ranking exactly;
//! * [`json`] — re-exports of the JSON emitter/parser (now in
//!   [`dpipe_spec::json`]) and the shared plan summary
//!   (`diffusionpipe_core::plan_json`) used by the machine-readable CLI
//!   output (`dpipe plan --json`, `dpipe sweep --json`).
//!
//! [`fingerprint`]: PlanRequest::fingerprint
//! [`ModelSpec::fingerprint`]: dpipe_model::ModelSpec::fingerprint
//! [`ClusterSpec::fingerprint`]: dpipe_cluster::ClusterSpec::fingerprint
//!
//! # Example
//!
//! ```
//! use dpipe_serve::{PlanRequest, PlanService, ServiceConfig};
//! use dpipe_cluster::ClusterSpec;
//! use dpipe_model::zoo;
//!
//! let service = PlanService::new(ServiceConfig::with_workers(2));
//! let request = PlanRequest::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8), 64);
//!
//! let cold = service.plan_one(request.clone());
//! let warm = service.plan_one(request);
//! assert!(!cold.cache_hit && warm.cache_hit);
//!
//! // A cache hit is byte-identical to the cold plan.
//! let (cold, warm) = (cold.outcome.unwrap(), warm.outcome.unwrap());
//! assert_eq!(cold.summary(), warm.summary());
//! assert!(cold.throughput > 0.0);
//! ```

mod cache;
pub mod json;
mod request;
mod service;
mod sweep;

pub use cache::{CacheResolution, CacheStats, ShardedCache};
pub use request::PlanRequest;
pub use service::{
    PlanOutcome, PlanResponse, PlanService, ServiceConfig, ServiceError, SimulateResponse,
    SubmitRejected, TraceCtx,
};
pub use sweep::{SweepGrid, SweepPoint, SweepReport};
// The declarative layer requests and sweeps are built on.
pub use dpipe_spec::{ClusterAxis, ModelRef, PlanSpec, SpecError, SweepSpec};
