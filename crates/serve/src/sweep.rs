//! Parallel configuration sweeps: fan a cartesian grid of (model × GPU
//! count × batch size) across the service and rank the outcomes.

use crate::json::JsonValue;
use crate::request::PlanRequest;
use crate::service::{PlanOutcome, PlanService};
use diffusionpipe_core::PlannerOptions;
use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_partition::SearchSpace;
use std::cmp::Ordering;
use std::fmt::Write as _;

/// A cartesian grid of configurations to evaluate.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Models to plan (each contributes `gpu_counts × batch_sizes` points).
    pub models: Vec<ModelSpec>,
    /// Total GPU counts; multiples of 8 above 8 become multi-machine
    /// p4de-like clusters, anything else a single node with that many GPUs.
    pub gpu_counts: Vec<usize>,
    /// Global batch sizes.
    pub batch_sizes: Vec<u32>,
    /// Planner options applied to every point.
    pub options: PlannerOptions,
    /// Search space applied to every point.
    pub search: SearchSpace,
}

impl SweepGrid {
    /// Creates a grid with default planner options and search space.
    pub fn new(models: Vec<ModelSpec>, gpu_counts: Vec<usize>, batch_sizes: Vec<u32>) -> Self {
        SweepGrid {
            models,
            gpu_counts,
            batch_sizes,
            options: PlannerOptions::default(),
            search: SearchSpace::default(),
        }
    }

    /// The cluster shape used for a GPU count: `p4de(n/8)` for multiples of
    /// 8 above 8, otherwise one machine with that many devices.
    pub fn cluster_for(gpus: usize) -> ClusterSpec {
        if gpus > 8 && gpus.is_multiple_of(8) {
            ClusterSpec::p4de(gpus / 8)
        } else {
            ClusterSpec::single_node(gpus)
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.models.len() * self.gpu_counts.len() * self.batch_sizes.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the grid as requests, in deterministic
    /// model-major / gpu / batch-minor order.
    pub fn requests(&self) -> Vec<PlanRequest> {
        let mut out = Vec::with_capacity(self.len());
        for model in &self.models {
            for &gpus in &self.gpu_counts {
                for &batch in &self.batch_sizes {
                    out.push(
                        PlanRequest::new(model.clone(), Self::cluster_for(gpus), batch)
                            .with_options(self.options)
                            .with_search_space(self.search),
                    );
                }
            }
        }
        out
    }

    /// Fans the grid across the service's worker pool and returns the
    /// ranked report.
    pub fn run(&self, service: &PlanService) -> SweepReport {
        let requests = self.requests();
        let meta: Vec<(String, usize, u32)> = requests
            .iter()
            .map(|r| (r.model.name.clone(), r.cluster.world_size(), r.global_batch))
            .collect();
        let responses = service.plan_batch(requests);
        let points = responses
            .into_iter()
            .zip(meta)
            .map(|(resp, (model, gpus, batch))| SweepPoint {
                model,
                gpus,
                global_batch: batch,
                fingerprint: resp.fingerprint,
                cache_hit: resp.cache_hit,
                outcome: resp.outcome,
            })
            .collect();
        SweepReport::ranked(points)
    }

    /// Plans every point on the calling thread with no service and no
    /// cache — the reference a parallel sweep must reproduce exactly.
    pub fn run_sequential(&self) -> SweepReport {
        let points = self
            .requests()
            .into_iter()
            .map(|r| SweepPoint {
                model: r.model.name.clone(),
                gpus: r.cluster.world_size(),
                global_batch: r.global_batch,
                fingerprint: r.fingerprint(),
                cache_hit: false,
                outcome: r.plan().map(std::sync::Arc::new),
            })
            .collect();
        SweepReport::ranked(points)
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Total GPU count.
    pub gpus: usize,
    /// Global batch size.
    pub global_batch: u32,
    /// Request fingerprint (the cache key).
    pub fingerprint: u64,
    /// Whether the service answered from its cache.
    pub cache_hit: bool,
    /// The plan or the planning error.
    pub outcome: PlanOutcome,
}

impl SweepPoint {
    /// Simulated cluster throughput, if planning succeeded.
    pub fn throughput(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|p| p.throughput)
    }

    /// Residual bubble ratio, if planning succeeded.
    pub fn bubble_ratio(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|p| p.bubble_ratio)
    }

    /// `model × gpus × batch` coordinates as a display string.
    pub fn coords(&self) -> String {
        format!("{}@{}gpu/b{}", self.model, self.gpus, self.global_batch)
    }
}

/// Sweep outcomes ranked best-first.
///
/// Feasible points come first, ordered by throughput (descending), then
/// bubble ratio (ascending), then coordinates — a total order, so a
/// parallel sweep ranks identically to a sequential one.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All evaluated points, best first; infeasible points at the end.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    fn ranked(mut points: Vec<SweepPoint>) -> Self {
        points.sort_by(Self::rank);
        SweepReport { points }
    }

    fn rank(a: &SweepPoint, b: &SweepPoint) -> Ordering {
        let key = |p: &SweepPoint| (p.model.clone(), p.gpus, p.global_batch);
        match (a.throughput(), b.throughput()) {
            (Some(ta), Some(tb)) => tb
                .partial_cmp(&ta)
                .unwrap_or(Ordering::Equal)
                .then_with(|| {
                    let (ra, rb) = (a.bubble_ratio().unwrap(), b.bubble_ratio().unwrap());
                    ra.partial_cmp(&rb).unwrap_or(Ordering::Equal)
                })
                .then_with(|| key(a).cmp(&key(b))),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => key(a).cmp(&key(b)),
        }
    }

    /// The best feasible point, if any.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points.first().filter(|p| p.outcome.is_ok())
    }

    /// The best feasible point for each model, in overall rank order.
    pub fn best_per_model(&self) -> Vec<&SweepPoint> {
        let mut seen: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        for p in self.points.iter().filter(|p| p.outcome.is_ok()) {
            if !seen.contains(&p.model.as_str()) {
                seen.push(&p.model);
                out.push(p);
            }
        }
        out
    }

    /// Fraction of points answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.cache_hit).count() as f64 / self.points.len() as f64
    }

    /// Renders the ranked table as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4} {:<28} {:>5} {:>7} {:>12} {:>9} {:>5}",
            "rank", "model", "gpus", "batch", "samples/s", "bubbles", "hit"
        );
        for (i, p) in self.points.iter().enumerate() {
            match &p.outcome {
                Ok(plan) => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<28} {:>5} {:>7} {:>12.1} {:>8.1}% {:>5}",
                        i + 1,
                        p.model,
                        p.gpus,
                        p.global_batch,
                        plan.throughput,
                        plan.bubble_ratio * 100.0,
                        if p.cache_hit { "yes" } else { "no" }
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<28} {:>5} {:>7} {:>12} ({e})",
                        i + 1,
                        p.model,
                        p.gpus,
                        p.global_batch,
                        "-"
                    );
                }
            }
        }
        out
    }

    /// The report as a JSON value (see [`crate::json`]).
    pub fn to_json(&self) -> JsonValue {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("model".to_owned(), JsonValue::Str(p.model.clone())),
                    ("gpus".to_owned(), JsonValue::UInt(p.gpus as u64)),
                    (
                        "global_batch".to_owned(),
                        JsonValue::UInt(u64::from(p.global_batch)),
                    ),
                    (
                        "fingerprint".to_owned(),
                        JsonValue::Str(format!("{:016x}", p.fingerprint)),
                    ),
                    ("cache_hit".to_owned(), JsonValue::Bool(p.cache_hit)),
                ];
                match &p.outcome {
                    Ok(plan) => fields.push(("plan".to_owned(), crate::json::plan_json(plan))),
                    Err(e) => fields.push(("error".to_owned(), JsonValue::Str(e.to_string()))),
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            (
                "points".to_owned(),
                JsonValue::UInt(self.points.len() as u64),
            ),
            (
                "cache_hit_rate".to_owned(),
                JsonValue::Num(self.cache_hit_rate()),
            ),
            ("ranking".to_owned(), JsonValue::Array(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use dpipe_model::zoo;

    #[test]
    fn cluster_for_picks_shapes() {
        assert_eq!(SweepGrid::cluster_for(4).world_size(), 4);
        assert_eq!(SweepGrid::cluster_for(4).machines, 1);
        let multi = SweepGrid::cluster_for(16);
        assert_eq!((multi.machines, multi.world_size()), (2, 16));
        // 12 is not a multiple of 8: one wide machine.
        assert_eq!(SweepGrid::cluster_for(12).machines, 1);
    }

    #[test]
    fn grid_is_cartesian_and_deterministic() {
        let grid = SweepGrid::new(
            vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
            vec![4, 8],
            vec![64, 128],
        );
        assert_eq!(grid.len(), 8);
        let a: Vec<u64> = grid.requests().iter().map(|r| r.fingerprint()).collect();
        let b: Vec<u64> = grid.requests().iter().map(|r| r.fingerprint()).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "grid points must have distinct keys");
    }

    #[test]
    fn report_ranks_by_throughput_and_finds_best_per_model() {
        let grid = SweepGrid::new(
            vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
            vec![8],
            vec![64, 128],
        );
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 8,
            ..ServiceConfig::default()
        });
        let report = grid.run(&service);
        assert_eq!(report.points.len(), 4);
        let tps: Vec<f64> = report
            .points
            .iter()
            .filter_map(|p| p.throughput())
            .collect();
        assert!(tps.windows(2).all(|w| w[0] >= w[1]), "not ranked: {tps:?}");
        let best = report.best_per_model();
        assert_eq!(best.len(), 2);
        assert_ne!(best[0].model, best[1].model);
        let text = report.render_text();
        assert!(text.contains("samples/s"));
        assert!(text.contains("dit-xl-2"));
    }
}
