//! Parallel configuration sweeps: a declarative [`SweepSpec`] (template
//! spec + axes) fanned across the service and ranked deterministically.

use crate::request::PlanRequest;
use crate::service::{PlanOutcome, PlanService};
use diffusionpipe_core::plan_json;
use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_spec::json::JsonValue;
use dpipe_spec::{
    cluster_for_gpus, cluster_label, ClusterAxis, ModelRef, PlanSpec, SpecError, SweepSpec,
};
use std::cmp::Ordering;
use std::fmt::Write as _;

/// A grid of configurations to evaluate: a thin executable wrapper around
/// the declarative [`SweepSpec`] (template [`PlanSpec`] + model / cluster /
/// batch axes). The cluster axis takes GPU counts *and* mixed-fleet machine
/// specs like `a100:4,h100:4`, so heterogeneous fleets sweep like any other
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// The declarative sweep this grid executes.
    pub spec: SweepSpec,
}

impl SweepGrid {
    /// Creates a grid over models × GPU counts × batch sizes with default
    /// planner options and search space. (Soft-deprecated: prefer
    /// [`SweepGrid::from_spec`] — this wrapper builds the equivalent
    /// [`SweepSpec`] for callers with already-constructed models.)
    pub fn new(models: Vec<ModelSpec>, gpu_counts: Vec<usize>, batch_sizes: Vec<u32>) -> Self {
        let template_model: ModelRef = models
            .first()
            .cloned()
            .map(ModelRef::Inline)
            .unwrap_or_else(|| ModelRef::Zoo("sd".to_owned()));
        let template = PlanSpec::new(
            template_model,
            cluster_for_gpus(gpu_counts.first().copied().unwrap_or(8)),
            batch_sizes.first().copied().unwrap_or(64),
        );
        SweepGrid {
            spec: SweepSpec::new(template)
                .with_models(models.into_iter().map(ModelRef::Inline).collect())
                .with_clusters(gpu_counts.into_iter().map(ClusterAxis::GpuCount).collect())
                .with_batches(batch_sizes),
        }
    }

    /// Wraps a declarative sweep spec.
    pub fn from_spec(spec: SweepSpec) -> Self {
        SweepGrid { spec }
    }

    /// The cluster shape used for a GPU count: `p4de(n/8)` for multiples of
    /// 8 above 8, otherwise one machine with that many devices. (Delegates
    /// to [`dpipe_spec::cluster_for_gpus`].)
    pub fn cluster_for(gpus: usize) -> ClusterSpec {
        cluster_for_gpus(gpus)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.spec.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// Materialises the grid as requests, in deterministic
    /// model-major / cluster / batch-minor order.
    ///
    /// # Errors
    ///
    /// The first axis point that fails to resolve (unknown zoo model, bad
    /// machine spec).
    pub fn requests(&self) -> Result<Vec<PlanRequest>, SpecError> {
        self.spec
            .specs()?
            .into_iter()
            .map(PlanRequest::from_spec)
            .collect()
    }

    /// Fans the grid across the service's worker pool and returns the
    /// ranked report.
    ///
    /// # Errors
    ///
    /// See [`SweepGrid::requests`].
    pub fn run(&self, service: &PlanService) -> Result<SweepReport, SpecError> {
        let requests = self.requests()?;
        let meta: Vec<(String, usize, String, u32)> = requests
            .iter()
            .map(|r| {
                (
                    r.model().name.clone(),
                    r.cluster().world_size(),
                    cluster_label(r.cluster()),
                    r.global_batch(),
                )
            })
            .collect();
        let responses = service.plan_batch(requests);
        let points = responses
            .into_iter()
            .zip(meta)
            .map(|(resp, (model, gpus, cluster, batch))| SweepPoint {
                model,
                gpus,
                cluster,
                global_batch: batch,
                fingerprint: resp.fingerprint,
                cache_hit: resp.cache_hit,
                outcome: resp.outcome,
            })
            .collect();
        Ok(SweepReport::ranked(points))
    }

    /// Plans every point on the calling thread with no service and no
    /// cache — the reference a parallel sweep must reproduce exactly.
    ///
    /// # Errors
    ///
    /// See [`SweepGrid::requests`].
    pub fn run_sequential(&self) -> Result<SweepReport, SpecError> {
        let points = self
            .requests()?
            .into_iter()
            .map(|r| SweepPoint {
                model: r.model().name.clone(),
                gpus: r.cluster().world_size(),
                cluster: cluster_label(r.cluster()),
                global_batch: r.global_batch(),
                fingerprint: r.fingerprint(),
                cache_hit: false,
                outcome: r.plan().map(std::sync::Arc::new),
            })
            .collect();
        Ok(SweepReport::ranked(points))
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Total GPU count.
    pub gpus: usize,
    /// Cluster label: `16gpu` for homogeneous shapes, the `a100:4,h100:4`
    /// class spec for mixed fleets.
    pub cluster: String,
    /// Global batch size.
    pub global_batch: u32,
    /// Request fingerprint (the cache key).
    pub fingerprint: u64,
    /// Whether the service answered from its cache.
    pub cache_hit: bool,
    /// The plan or the planning error.
    pub outcome: PlanOutcome,
}

impl SweepPoint {
    /// Simulated cluster throughput, if planning succeeded.
    pub fn throughput(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|p| p.throughput)
    }

    /// Residual bubble ratio, if planning succeeded.
    pub fn bubble_ratio(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|p| p.bubble_ratio)
    }

    /// `model × cluster × batch` coordinates as a display string
    /// (`sd@16gpu/b128`, `sd@a100:2,h100:2/b128`).
    pub fn coords(&self) -> String {
        format!("{}@{}/b{}", self.model, self.cluster, self.global_batch)
    }
}

/// Sweep outcomes ranked best-first.
///
/// Feasible points come first, ordered by throughput (descending), then
/// bubble ratio (ascending), then coordinates — a total order, so a
/// parallel sweep ranks identically to a sequential one.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All evaluated points, best first; infeasible points at the end.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    fn ranked(mut points: Vec<SweepPoint>) -> Self {
        points.sort_by(Self::rank);
        SweepReport { points }
    }

    fn rank(a: &SweepPoint, b: &SweepPoint) -> Ordering {
        // `sort_by` requires a *total* order: `partial_cmp(..).unwrap_or`
        // on raw floats is not one (NaN compares "equal" to everything,
        // breaking transitivity), and unwrapping an absent bubble ratio
        // panics mid-sort. Normalise both metrics to values `f64::total_cmp`
        // orders deterministically instead: a missing or NaN throughput
        // ranks as worst-possible, a missing or NaN bubble ratio likewise.
        fn worst_if_nan(x: Option<f64>, worst: f64) -> f64 {
            match x {
                Some(v) if !v.is_nan() => v,
                _ => worst,
            }
        }
        let key = |p: &SweepPoint| (p.model.clone(), p.gpus, p.cluster.clone(), p.global_batch);
        let feasible = |p: &SweepPoint| p.outcome.is_ok();
        // Feasible points strictly before infeasible ones, regardless of
        // what their metrics contain.
        feasible(b)
            .cmp(&feasible(a))
            .then_with(|| {
                let (ta, tb) = (
                    worst_if_nan(a.throughput(), f64::NEG_INFINITY),
                    worst_if_nan(b.throughput(), f64::NEG_INFINITY),
                );
                tb.total_cmp(&ta)
            })
            .then_with(|| {
                let (ra, rb) = (
                    worst_if_nan(a.bubble_ratio(), f64::INFINITY),
                    worst_if_nan(b.bubble_ratio(), f64::INFINITY),
                );
                ra.total_cmp(&rb)
            })
            .then_with(|| key(a).cmp(&key(b)))
    }

    /// The best feasible point, if any.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points.first().filter(|p| p.outcome.is_ok())
    }

    /// The best feasible point for each model, in overall rank order.
    pub fn best_per_model(&self) -> Vec<&SweepPoint> {
        let mut seen: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        for p in self.points.iter().filter(|p| p.outcome.is_ok()) {
            if !seen.contains(&p.model.as_str()) {
                seen.push(&p.model);
                out.push(p);
            }
        }
        out
    }

    /// Fraction of points answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.cache_hit).count() as f64 / self.points.len() as f64
    }

    /// Renders the ranked table as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4} {:<28} {:>16} {:>7} {:>12} {:>9} {:>5}",
            "rank", "model", "cluster", "batch", "samples/s", "bubbles", "hit"
        );
        for (i, p) in self.points.iter().enumerate() {
            match &p.outcome {
                Ok(plan) => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<28} {:>16} {:>7} {:>12.1} {:>8.1}% {:>5}",
                        i + 1,
                        p.model,
                        p.cluster,
                        p.global_batch,
                        plan.throughput,
                        plan.bubble_ratio * 100.0,
                        if p.cache_hit { "yes" } else { "no" }
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "{:<4} {:<28} {:>16} {:>7} {:>12} ({e})",
                        i + 1,
                        p.model,
                        p.cluster,
                        p.global_batch,
                        "-"
                    );
                }
            }
        }
        out
    }

    /// The report as a JSON value (see [`dpipe_spec::json`]).
    pub fn to_json(&self) -> JsonValue {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("model".to_owned(), JsonValue::Str(p.model.clone())),
                    ("gpus".to_owned(), JsonValue::UInt(p.gpus as u64)),
                    ("cluster".to_owned(), JsonValue::Str(p.cluster.clone())),
                    (
                        "global_batch".to_owned(),
                        JsonValue::UInt(u64::from(p.global_batch)),
                    ),
                    (
                        "fingerprint".to_owned(),
                        JsonValue::Str(format!("{:016x}", p.fingerprint)),
                    ),
                    ("cache_hit".to_owned(), JsonValue::Bool(p.cache_hit)),
                ];
                match &p.outcome {
                    Ok(plan) => fields.push(("plan".to_owned(), plan_json(plan))),
                    Err(e) => fields.push(("error".to_owned(), JsonValue::Str(e.to_string()))),
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            (
                "points".to_owned(),
                JsonValue::UInt(self.points.len() as u64),
            ),
            (
                "cache_hit_rate".to_owned(),
                JsonValue::Num(self.cache_hit_rate()),
            ),
            ("ranking".to_owned(), JsonValue::Array(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use dpipe_model::zoo;

    #[test]
    fn cluster_for_picks_shapes() {
        assert_eq!(SweepGrid::cluster_for(4).world_size(), 4);
        assert_eq!(SweepGrid::cluster_for(4).machines, 1);
        let multi = SweepGrid::cluster_for(16);
        assert_eq!((multi.machines, multi.world_size()), (2, 16));
        // 12 is not a multiple of 8: one wide machine.
        assert_eq!(SweepGrid::cluster_for(12).machines, 1);
    }

    #[test]
    fn grid_is_cartesian_and_deterministic() {
        let grid = SweepGrid::new(
            vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
            vec![4, 8],
            vec![64, 128],
        );
        assert_eq!(grid.len(), 8);
        let fps = |g: &SweepGrid| -> Vec<u64> {
            g.requests()
                .unwrap()
                .iter()
                .map(|r| r.fingerprint())
                .collect()
        };
        let a = fps(&grid);
        let b = fps(&grid);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "grid points must have distinct keys");
    }

    #[test]
    fn mixed_fleet_axis_points_sweep() {
        let template = PlanSpec::zoo("sd", SweepGrid::cluster_for(8), 64);
        let grid = SweepGrid::from_spec(
            SweepSpec::new(template)
                .with_clusters(vec![
                    ClusterAxis::GpuCount(8),
                    ClusterAxis::MachineClasses("a100:1,h100:1".to_owned()),
                ])
                .with_batches(vec![64]),
        );
        assert_eq!(grid.len(), 2);
        let requests = grid.requests().unwrap();
        assert!(!requests[0].cluster().is_heterogeneous());
        assert!(requests[1].cluster().is_heterogeneous());
        assert_ne!(requests[0].fingerprint(), requests[1].fingerprint());

        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 4,
            ..ServiceConfig::default()
        });
        let report = grid.run(&service).unwrap();
        assert_eq!(report.points.len(), 2);
        assert!(report.points.iter().all(|p| p.outcome.is_ok()));
        let mixed = report
            .points
            .iter()
            .find(|p| p.cluster == "a100:1,h100:1")
            .expect("mixed point in report");
        assert!(mixed.coords().contains("a100:1,h100:1"));
        let text = report.render_text();
        assert!(text.contains("a100:1,h100:1"), "{text}");
    }

    #[test]
    fn bad_axis_points_are_typed_errors() {
        let template = PlanSpec::zoo("sd", SweepGrid::cluster_for(8), 64);
        let grid = SweepGrid::from_spec(
            SweepSpec::new(template.clone())
                .with_clusters(vec![ClusterAxis::MachineClasses("v100:2".to_owned())]),
        );
        assert_eq!(
            grid.run_sequential().unwrap_err(),
            SpecError::UnknownClass("v100".to_owned())
        );
        let grid = SweepGrid::from_spec(
            SweepSpec::new(template).with_models(vec![ModelRef::Zoo("warpdrive".to_owned())]),
        );
        assert_eq!(
            grid.requests().unwrap_err(),
            SpecError::UnknownModel("warpdrive".to_owned())
        );
    }

    #[test]
    fn ranking_is_total_and_panic_free_with_nan_metrics() {
        use diffusionpipe_core::{PlanError, Planner};
        use dpipe_cluster::ClusterSpec;
        use std::sync::Arc;

        let base = Planner::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8))
            .plan(64)
            .unwrap();
        let point = |name: &str, throughput: f64, bubble_ratio: f64| {
            let mut plan = base.clone();
            plan.throughput = throughput;
            plan.bubble_ratio = bubble_ratio;
            SweepPoint {
                model: name.to_owned(),
                gpus: 8,
                cluster: "8gpu".to_owned(),
                global_batch: 64,
                fingerprint: 0,
                cache_hit: false,
                outcome: Ok(Arc::new(plan)),
            }
        };
        let infeasible = SweepPoint {
            model: "zz-broken".to_owned(),
            gpus: 8,
            cluster: "8gpu".to_owned(),
            global_batch: 64,
            fingerprint: 0,
            cache_hit: false,
            outcome: Err(PlanError::NoFeasibleConfig),
        };
        // NaN throughput, NaN bubble ratio, ordinary points and an
        // infeasible point, shuffled: sorting must not panic, must be a
        // total order (exercised across many permutations by sort_by's
        // internal checks), and must rank NaN metrics as worst-feasible.
        let points = vec![
            point("a-nan-tp", f64::NAN, 0.1),
            point("b-fast", 100.0, 0.1),
            point("c-nan-ratio", 100.0, f64::NAN),
            point("d-slow", 1.0, 0.9),
            infeasible.clone(),
            point("e-nan-both", f64::NAN, f64::NAN),
        ];
        for rotation in 0..points.len() {
            let mut shuffled = points.clone();
            shuffled.rotate_left(rotation);
            let report = SweepReport::ranked(shuffled);
            let order: Vec<&str> = report.points.iter().map(|p| p.model.as_str()).collect();
            // Finite throughput first (NaN ratio loses its tie-break),
            // NaN-throughput points next (by coords), infeasible last.
            assert_eq!(
                order,
                vec![
                    "b-fast",
                    "c-nan-ratio",
                    "d-slow",
                    "a-nan-tp",
                    "e-nan-both",
                    "zz-broken"
                ],
                "rotation {rotation}"
            );
        }
        // The comparator itself is antisymmetric over every pair, NaNs and
        // errors included — the property `sort_by` relies on.
        for x in &points {
            assert_eq!(SweepReport::rank(x, x), Ordering::Equal);
            for y in &points {
                assert_eq!(
                    SweepReport::rank(x, y),
                    SweepReport::rank(y, x).reverse(),
                    "{} vs {}",
                    x.model,
                    y.model
                );
            }
        }
    }

    #[test]
    fn report_ranks_by_throughput_and_finds_best_per_model() {
        let grid = SweepGrid::new(
            vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
            vec![8],
            vec![64, 128],
        );
        let service = PlanService::new(ServiceConfig {
            workers: 2,
            cache_shards: 8,
            ..ServiceConfig::default()
        });
        let report = grid.run(&service).unwrap();
        assert_eq!(report.points.len(), 4);
        let tps: Vec<f64> = report
            .points
            .iter()
            .filter_map(|p| p.throughput())
            .collect();
        assert!(tps.windows(2).all(|w| w[0] >= w[1]), "not ranked: {tps:?}");
        let best = report.best_per_model();
        assert_eq!(best.len(), 2);
        assert_ne!(best[0].model, best[1].model);
        let text = report.render_text();
        assert!(text.contains("samples/s"));
        assert!(text.contains("dit-xl-2"));
    }
}
