//! One planning request: a thin wrapper over the declarative [`PlanSpec`].
//!
//! Since the spec redesign, the request no longer duplicates the planner's
//! knobs — it *is* a [`PlanSpec`] plus the resolved model, and its cache
//! fingerprint is derived from the canonical spec
//! ([`PlanSpec::fingerprint_with_model`]). Homogeneous-cluster requests
//! keep the exact fingerprints they had before the redesign, so warm
//! caches and committed goldens survive.

use diffusionpipe_core::{Plan, PlanError, Planner, PlannerOptions};
use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_partition::SearchSpace;
use dpipe_spec::{PlanSpec, SpecError};

/// Everything the planner needs for one plan, as a submit-able value.
///
/// A request is a *value*; submitting the same value twice yields the same
/// [`fingerprint`](PlanRequest::fingerprint) and therefore at most one
/// planning run through the service's cache. Zoo-name and inline forms of
/// the same model are the same value in this sense — they fingerprint
/// identically.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The canonical declarative spec (the single source of truth).
    spec: PlanSpec,
    /// The resolution of a `ModelRef::Zoo` reference, cached at
    /// construction so fingerprinting and labelling stay infallible.
    /// `None` for inline specs — an inline ref resolves to itself, and
    /// duplicating it would double every request's model memory on the
    /// serve hot path.
    zoo_model: Option<ModelSpec>,
}

impl PlanRequest {
    /// Creates a request with default planner options and search space
    /// (an inline-model spec under the hood).
    pub fn new(model: ModelSpec, cluster: ClusterSpec, global_batch: u32) -> Self {
        PlanRequest {
            spec: PlanSpec::new(model, cluster, global_batch),
            zoo_model: None,
        }
    }

    /// Wraps a declarative spec, resolving its model reference.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownModel`] when a zoo reference does not resolve.
    pub fn from_spec(spec: PlanSpec) -> Result<Self, SpecError> {
        let zoo_model = match &spec.model {
            dpipe_spec::ModelRef::Zoo(_) => Some(spec.model.resolve()?),
            dpipe_spec::ModelRef::Inline(_) => None,
        };
        Ok(PlanRequest { spec, zoo_model })
    }

    /// The canonical spec this request wraps.
    pub fn spec(&self) -> &PlanSpec {
        &self.spec
    }

    /// The resolved model.
    pub fn model(&self) -> &ModelSpec {
        match (&self.spec.model, &self.zoo_model) {
            (dpipe_spec::ModelRef::Inline(m), _) => m,
            (dpipe_spec::ModelRef::Zoo(_), Some(m)) => m,
            // Both constructors resolve zoo references eagerly.
            (dpipe_spec::ModelRef::Zoo(_), None) => {
                unreachable!("zoo reference resolved at construction")
            }
        }
    }

    /// The cluster to plan for.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.spec.cluster
    }

    /// Global batch size (per-backbone batch for cascaded models).
    pub fn global_batch(&self) -> u32 {
        self.spec.global_batch
    }

    /// Ablation toggles forwarded to the planner.
    pub fn options(&self) -> PlannerOptions {
        self.spec.options
    }

    /// Hyper-parameter bounds forwarded to the planner.
    pub fn search(&self) -> SearchSpace {
        self.spec.search
    }

    /// Whether the request plans from record-backed profiles.
    pub fn record_backed(&self) -> bool {
        self.spec.record_backed
    }

    /// Switches the request to record-backed profiling. (Soft-deprecated:
    /// prefer setting the field on a [`PlanSpec`] and
    /// [`PlanRequest::from_spec`].)
    pub fn with_record_backed(mut self, record_backed: bool) -> Self {
        self.spec.record_backed = record_backed;
        self
    }

    /// Overrides the planner options. (Soft-deprecated: prefer
    /// [`PlanSpec::with_options`].)
    pub fn with_options(mut self, options: PlannerOptions) -> Self {
        self.spec.options = options;
        self
    }

    /// Overrides the hyper-parameter search space. (Soft-deprecated:
    /// prefer [`PlanSpec::with_search_space`].)
    pub fn with_search_space(mut self, search: SearchSpace) -> Self {
        self.spec.search = search;
        self
    }

    /// Stable 64-bit content fingerprint of the whole request — the
    /// plan-cache key, derived from the canonical spec through
    /// [`PlanSpec::fingerprint_with_model`]. Pre-redesign fingerprints
    /// (homogeneous and mixed-class) are preserved bit-for-bit.
    pub fn fingerprint(&self) -> u64 {
        self.spec.fingerprint_with_model(self.model())
    }

    /// Short human-readable label, e.g. `stable-diffusion-v2.1@8gpu/b256`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}gpu/b{}",
            self.model().name,
            self.spec.cluster.world_size(),
            self.spec.global_batch
        )
    }

    /// Runs the planner synchronously on the calling thread. This is the
    /// single source of truth for what one request costs; the service's
    /// workers call exactly this.
    ///
    /// Degenerate requests (no devices, zero batch) return
    /// [`PlanError::InvalidRequest`] instead of reaching the planner's
    /// internal assertions, so serving layers never panic on caller input.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan(&self) -> Result<Plan, PlanError> {
        self.plan_with_parallelism(1)
    }

    /// [`PlanRequest::plan`] with the planner's per-configuration search
    /// fanned across `workers` threads. The plan is identical for any
    /// worker count ([`Planner::with_parallelism`]), so parallelism is a
    /// service-side sizing knob and deliberately *not* part of the
    /// request's fingerprint (nor is the spec's own `parallelism` field).
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_with_parallelism(&self, workers: usize) -> Result<Plan, PlanError> {
        self.plan_traced(workers, &dpipe_trace::Tracer::off(), None)
    }

    /// [`PlanRequest::plan_with_parallelism`] with the planner's phase
    /// spans recorded into `tracer` under `parent`. Tracing is observation
    /// only: the returned plan is byte-identical to the untraced call.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_traced(
        &self,
        workers: usize,
        tracer: &dpipe_trace::Tracer,
        parent: Option<dpipe_trace::SpanId>,
    ) -> Result<Plan, PlanError> {
        if self.spec.cluster.world_size() == 0 {
            return Err(PlanError::InvalidRequest(
                "cluster has no devices".to_owned(),
            ));
        }
        if self.spec.global_batch == 0 {
            return Err(PlanError::InvalidRequest(
                "global batch must be positive".to_owned(),
            ));
        }
        if let Err(e) = self.spec.cluster.validate_classes() {
            return Err(PlanError::InvalidRequest(e));
        }
        Planner::new(self.model().clone(), self.spec.cluster.clone())
            .with_options(self.spec.options)
            .with_search_space(self.spec.search)
            .with_fill_config(self.spec.fill.clone())
            .with_schedule_kind(self.spec.schedule)
            .with_parallelism(workers)
            .with_record_backed_profiles(self.spec.record_backed)
            .with_tracer(tracer.clone())
            .with_trace_parent(parent)
            .plan(self.spec.global_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_spec::ModelRef;

    #[test]
    fn fingerprint_covers_every_knob() {
        let base = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            256,
        );
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let other_model =
            PlanRequest::new(zoo::dit_xl_2(), base.cluster().clone(), base.global_batch());
        let other_cluster = PlanRequest::new(
            base.model().clone(),
            ClusterSpec::single_node(4),
            base.global_batch(),
        );
        let other_batch = PlanRequest::new(base.model().clone(), base.cluster().clone(), 128);
        let other_options = base.clone().with_options(PlannerOptions {
            bubble_filling: false,
            partial_batch: true,
        });
        let other_search = base.clone().with_search_space(SearchSpace {
            max_stages: 4,
            max_micro_batches: 8,
        });
        let other_profiles = base.clone().with_record_backed(true);
        let prints = [
            base.fingerprint(),
            other_model.fingerprint(),
            other_cluster.fingerprint(),
            other_batch.fingerprint(),
            other_options.fingerprint(),
            other_search.fingerprint(),
            other_profiles.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn zoo_spec_and_builder_request_share_a_cache_key() {
        let builder = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            256,
        );
        let spec =
            PlanRequest::from_spec(PlanSpec::zoo("sd", ClusterSpec::single_node(8), 256)).unwrap();
        assert_eq!(builder.fingerprint(), spec.fingerprint());
        assert_eq!(builder.label(), spec.label());
        // And through a JSON round trip of the spec.
        let reloaded =
            PlanRequest::from_spec(PlanSpec::from_json(&spec.spec().to_json()).unwrap()).unwrap();
        assert_eq!(reloaded.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn unknown_zoo_reference_is_a_typed_spec_error() {
        let err =
            PlanRequest::from_spec(PlanSpec::zoo("warpdrive", ClusterSpec::single_node(8), 64))
                .unwrap_err();
        assert_eq!(err, SpecError::UnknownModel("warpdrive".to_owned()));
    }

    #[test]
    fn heterogeneous_cluster_changes_the_cache_key() {
        use dpipe_cluster::DeviceClass;
        let model = zoo::stable_diffusion_v2_1();
        let homo = PlanRequest::new(model.clone(), ClusterSpec::p4de(2), 256);
        let mixed = PlanRequest::new(
            model.clone(),
            ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]),
            256,
        );
        let swapped = PlanRequest::new(
            model,
            ClusterSpec::mixed(&[(DeviceClass::h100(), 1), (DeviceClass::a100(), 1)]),
            256,
        );
        assert_ne!(homo.fingerprint(), mixed.fingerprint());
        assert_ne!(mixed.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn inconsistent_classes_are_an_invalid_request_not_a_panic() {
        use dpipe_cluster::DeviceClass;
        let cluster = ClusterSpec::p4de(4).with_machine_classes(vec![DeviceClass::h100()]);
        let err = PlanRequest::new(zoo::stable_diffusion_v2_1(), cluster, 256)
            .plan()
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidRequest(_)), "{err:?}");
    }

    #[test]
    fn record_backed_requests_plan() {
        let r = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        )
        .with_record_backed(true);
        assert!(r.record_backed());
        let plan = r.plan().unwrap();
        assert!(plan.throughput > 0.0);
    }

    #[test]
    fn label_is_readable() {
        let r = PlanRequest::new(zoo::dit_xl_2(), ClusterSpec::single_node(4), 64);
        assert_eq!(r.label(), "dit-xl-2@4gpu/b64");
        assert_eq!(r.spec().model, ModelRef::Inline(zoo::dit_xl_2()));
    }

    #[test]
    fn plan_matches_direct_planner_call() {
        let r = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        );
        let via_request = r.plan().unwrap();
        let direct = Planner::new(r.model().clone(), r.cluster().clone())
            .plan(64)
            .unwrap();
        assert_eq!(via_request.summary(), direct.summary());
        // The spec path is the same plan again.
        let via_spec = Planner::plan_spec(r.spec()).unwrap();
        assert_eq!(via_spec.summary(), direct.summary());
    }
}
