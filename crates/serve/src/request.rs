//! One planning request and its content fingerprint.

use diffusionpipe_core::{Plan, PlanError, Planner, PlannerOptions};
use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_partition::SearchSpace;
use dpipe_stablehash::StableHasher;

/// Everything the planner needs for one plan: the model, the cluster, the
/// global batch size and the planner knobs.
///
/// A request is a *value*; submitting the same value twice yields the same
/// [`fingerprint`](PlanRequest::fingerprint) and therefore at most one
/// planning run through the service's cache.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The model to plan.
    pub model: ModelSpec,
    /// The cluster to plan for.
    pub cluster: ClusterSpec,
    /// Global batch size (per-backbone batch for cascaded models).
    pub global_batch: u32,
    /// Ablation toggles forwarded to [`Planner::with_options`].
    pub options: PlannerOptions,
    /// Hyper-parameter bounds forwarded to [`Planner::with_search_space`].
    pub search: SearchSpace,
    /// Plan from record-backed (interpolated-sample) profiles instead of
    /// the analytic device model; forwarded to
    /// [`Planner::with_record_backed_profiles`]. A model/profile mismatch
    /// surfaces as a typed [`PlanError::Profile`] in the response — it can
    /// never kill a worker.
    pub record_backed: bool,
}

impl PlanRequest {
    /// Creates a request with default planner options and search space.
    pub fn new(model: ModelSpec, cluster: ClusterSpec, global_batch: u32) -> Self {
        PlanRequest {
            model,
            cluster,
            global_batch,
            options: PlannerOptions::default(),
            search: SearchSpace::default(),
            record_backed: false,
        }
    }

    /// Switches the request to record-backed profiling.
    pub fn with_record_backed(mut self, record_backed: bool) -> Self {
        self.record_backed = record_backed;
        self
    }

    /// Overrides the planner options.
    pub fn with_options(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the hyper-parameter search space.
    pub fn with_search_space(mut self, search: SearchSpace) -> Self {
        self.search = search;
        self
    }

    /// Stable 64-bit content fingerprint of the whole request, combining
    /// [`ModelSpec::fingerprint`], [`ClusterSpec::fingerprint`], the batch
    /// size and every planner knob. This is the plan-cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dpipe_serve::PlanRequest");
        h.write_u64(self.model.fingerprint());
        h.write_u64(self.cluster.fingerprint());
        h.write_u32(self.global_batch);
        h.write_bool(self.options.bubble_filling);
        h.write_bool(self.options.partial_batch);
        h.write_usize(self.search.max_stages);
        h.write_usize(self.search.max_micro_batches);
        h.write_bool(self.record_backed);
        h.finish()
    }

    /// Short human-readable label, e.g. `stable-diffusion-v2.1@8gpu/b256`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}gpu/b{}",
            self.model.name,
            self.cluster.world_size(),
            self.global_batch
        )
    }

    /// Runs the planner synchronously on the calling thread. This is the
    /// single source of truth for what one request costs; the service's
    /// workers call exactly this.
    ///
    /// Degenerate requests (no devices, zero batch) return
    /// [`PlanError::InvalidRequest`] instead of reaching the planner's
    /// internal assertions, so serving layers never panic on caller input.
    pub fn plan(&self) -> Result<Plan, PlanError> {
        self.plan_with_parallelism(1)
    }

    /// [`PlanRequest::plan`] with the planner's per-configuration search
    /// fanned across `workers` threads. The plan is identical for any
    /// worker count ([`Planner::with_parallelism`]), so parallelism is a
    /// service-side sizing knob and deliberately *not* part of the
    /// request's fingerprint.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_with_parallelism(&self, workers: usize) -> Result<Plan, PlanError> {
        if self.cluster.world_size() == 0 {
            return Err(PlanError::InvalidRequest(
                "cluster has no devices".to_owned(),
            ));
        }
        if self.global_batch == 0 {
            return Err(PlanError::InvalidRequest(
                "global batch must be positive".to_owned(),
            ));
        }
        if let Err(e) = self.cluster.validate_classes() {
            return Err(PlanError::InvalidRequest(e));
        }
        Planner::new(self.model.clone(), self.cluster.clone())
            .with_options(self.options)
            .with_search_space(self.search)
            .with_parallelism(workers)
            .with_record_backed_profiles(self.record_backed)
            .plan(self.global_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    #[test]
    fn fingerprint_covers_every_knob() {
        let base = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            256,
        );
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let other_model = PlanRequest {
            model: zoo::dit_xl_2(),
            ..base.clone()
        };
        let other_cluster = PlanRequest {
            cluster: ClusterSpec::single_node(4),
            ..base.clone()
        };
        let other_batch = PlanRequest {
            global_batch: 128,
            ..base.clone()
        };
        let other_options = base.clone().with_options(PlannerOptions {
            bubble_filling: false,
            partial_batch: true,
        });
        let other_search = base.clone().with_search_space(SearchSpace {
            max_stages: 4,
            max_micro_batches: 8,
        });
        let other_profiles = base.clone().with_record_backed(true);
        let prints = [
            base.fingerprint(),
            other_model.fingerprint(),
            other_cluster.fingerprint(),
            other_batch.fingerprint(),
            other_options.fingerprint(),
            other_search.fingerprint(),
            other_profiles.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn heterogeneous_cluster_changes_the_cache_key() {
        use dpipe_cluster::DeviceClass;
        let model = zoo::stable_diffusion_v2_1();
        let homo = PlanRequest::new(model.clone(), ClusterSpec::p4de(2), 256);
        let mixed = PlanRequest::new(
            model.clone(),
            ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]),
            256,
        );
        let swapped = PlanRequest::new(
            model,
            ClusterSpec::mixed(&[(DeviceClass::h100(), 1), (DeviceClass::a100(), 1)]),
            256,
        );
        assert_ne!(homo.fingerprint(), mixed.fingerprint());
        assert_ne!(mixed.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn inconsistent_classes_are_an_invalid_request_not_a_panic() {
        use dpipe_cluster::DeviceClass;
        let cluster = ClusterSpec::p4de(4).with_machine_classes(vec![DeviceClass::h100()]);
        let err = PlanRequest::new(zoo::stable_diffusion_v2_1(), cluster, 256)
            .plan()
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidRequest(_)), "{err:?}");
    }

    #[test]
    fn record_backed_requests_plan() {
        let r = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        )
        .with_record_backed(true);
        let plan = r.plan().unwrap();
        assert!(plan.throughput > 0.0);
    }

    #[test]
    fn label_is_readable() {
        let r = PlanRequest::new(zoo::dit_xl_2(), ClusterSpec::single_node(4), 64);
        assert_eq!(r.label(), "dit-xl-2@4gpu/b64");
    }

    #[test]
    fn plan_matches_direct_planner_call() {
        let r = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        );
        let via_request = r.plan().unwrap();
        let direct = Planner::new(r.model.clone(), r.cluster.clone())
            .plan(64)
            .unwrap();
        assert_eq!(via_request.summary(), direct.summary());
    }
}
