//! Integration tests for the planning service: cache-hit identity,
//! single-flight deduplication, and parallel-vs-sequential sweep agreement.

use diffusionpipe_core::PlannerOptions;
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;
use dpipe_serve::{PlanRequest, PlanService, ServiceConfig, SweepGrid};
use std::sync::Arc;

fn sd_request(batch: u32) -> PlanRequest {
    PlanRequest::new(
        zoo::stable_diffusion_v2_1(),
        ClusterSpec::single_node(8),
        batch,
    )
}

#[test]
fn cache_hit_plans_are_byte_identical_to_cold_plans() {
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let cold = service.plan_one(sd_request(128));
    let warm = service.plan_one(sd_request(128));
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    assert_eq!(cold.fingerprint, warm.fingerprint);

    let (cold_plan, warm_plan) = (cold.outcome.unwrap(), warm.outcome.unwrap());
    // Not merely equal: the hit returns the very same allocation.
    assert!(Arc::ptr_eq(&cold_plan, &warm_plan));
    assert_eq!(cold_plan.summary(), warm_plan.summary());
    assert_eq!(cold_plan.fingerprint(), warm_plan.fingerprint());

    // And the cold plan matches planning without any service around —
    // structurally equal except the measured preprocessing wall times,
    // which legitimately differ between runs.
    let mut sequential = sd_request(128).plan().unwrap();
    assert_eq!(sequential.summary(), cold_plan.summary());
    let mut served = (*cold_plan).clone();
    served.preprocessing = Default::default();
    sequential.preprocessing = Default::default();
    assert_eq!(served, sequential);
}

#[test]
fn identical_requests_in_one_batch_plan_once() {
    let service = PlanService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let responses = service.plan_batch(vec![sd_request(96); 8]);
    assert_eq!(responses.len(), 8);
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "identical requests must plan exactly once");
    assert_eq!(stats.hits, 7);
    assert_eq!(stats.entries, 1);
    let summaries: Vec<String> = responses
        .iter()
        .map(|r| r.outcome.as_ref().unwrap().summary())
        .collect();
    assert!(summaries.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn cached_lookup_resolves_to_the_matching_request() {
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let a = service.plan_one(sd_request(64));
    let b = service.plan_one(PlanRequest::new(
        zoo::dit_xl_2(),
        ClusterSpec::single_node(4),
        64,
    ));
    assert_ne!(a.fingerprint, b.fingerprint);
    let cached_a = service.cached(a.fingerprint).unwrap().unwrap();
    let cached_b = service.cached(b.fingerprint).unwrap().unwrap();
    assert!(Arc::ptr_eq(&cached_a, &a.outcome.unwrap()));
    assert!(Arc::ptr_eq(&cached_b, &b.outcome.unwrap()));
    assert_ne!(cached_a.summary(), cached_b.summary());
    assert_eq!(service.cached(a.fingerprint ^ b.fingerprint), None);
}

#[test]
fn degenerate_requests_fail_cleanly_without_killing_the_pool() {
    use diffusionpipe_core::PlanError;
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    // Zero devices and zero batch used to panic the planner inside a
    // worker, which shrank the pool and panicked the batch caller.
    let no_gpus = PlanRequest::new(
        zoo::stable_diffusion_v2_1(),
        ClusterSpec::single_node(0),
        64,
    );
    let no_batch = sd_request(0);
    let responses = service.plan_batch(vec![no_gpus, no_batch, sd_request(64)]);
    assert!(matches!(
        responses[0].outcome,
        Err(PlanError::InvalidRequest(_))
    ));
    assert!(matches!(
        responses[1].outcome,
        Err(PlanError::InvalidRequest(_))
    ));
    // The pool survives and still plans valid requests.
    assert!(responses[2].outcome.is_ok());
    assert!(service.plan_one(sd_request(64)).cache_hit);
}

#[test]
fn parallel_sweep_matches_sequential_ranking_exactly() {
    let grid = SweepGrid::new(
        vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
        vec![4, 8],
        vec![64, 128],
    );
    assert_eq!(grid.len(), 8);
    let sequential = grid.run_sequential().unwrap();

    let service = PlanService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let parallel = grid.run(&service).unwrap();

    assert_eq!(parallel.points.len(), sequential.points.len());
    for (p, s) in parallel.points.iter().zip(&sequential.points) {
        assert_eq!(p.coords(), s.coords(), "ranking order diverged");
        assert_eq!(p.fingerprint, s.fingerprint);
        match (&p.outcome, &s.outcome) {
            (Ok(pp), Ok(sp)) => assert_eq!(pp.summary(), sp.summary()),
            (Err(pe), Err(se)) => assert_eq!(pe, se),
            _ => panic!("feasibility diverged at {}", p.coords()),
        }
    }
    assert_eq!(
        parallel.best().unwrap().coords(),
        sequential.best().unwrap().coords()
    );
}

#[test]
fn warm_sweep_rerun_is_all_cache_hits_and_byte_identical() {
    let grid = SweepGrid::new(
        vec![zoo::stable_diffusion_v2_1()],
        vec![4, 8],
        vec![64, 128],
    );
    let service = PlanService::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let cold = grid.run(&service).unwrap();
    let warm = grid.run(&service).unwrap();
    assert_eq!(warm.cache_hit_rate(), 1.0, "warm re-run must be 100% hits");
    for (c, w) in cold.points.iter().zip(&warm.points) {
        assert_eq!(c.coords(), w.coords());
        assert_eq!(
            c.outcome.as_ref().unwrap().summary(),
            w.outcome.as_ref().unwrap().summary()
        );
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, grid.len() as u64);
    assert_eq!(stats.hits, grid.len() as u64);
}

#[test]
fn sweep_reports_infeasible_points_without_poisoning_the_ranking() {
    // A giant batch on a tiny cluster can still be feasible; an invalid
    // model cannot. Mix one broken model into the grid.
    let mut broken = zoo::stable_diffusion_v2_1();
    broken.name = "broken".to_owned();
    broken.components.retain(|c| !c.is_trainable());
    let grid = SweepGrid::new(vec![zoo::dit_xl_2(), broken], vec![8], vec![64]);
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    let report = grid.run(&service).unwrap();
    assert_eq!(report.points.len(), 2);
    assert!(report.points[0].outcome.is_ok());
    assert!(report.points[1].outcome.is_err());
    assert_eq!(report.best().unwrap().model, "dit-xl-2");
    assert_eq!(report.best_per_model().len(), 1);
    let text = report.render_text();
    assert!(text.contains("invalid model"));
}

#[test]
fn sweep_respects_planner_options() {
    let mut grid = SweepGrid::new(vec![zoo::stable_diffusion_v2_1()], vec![8], vec![256]);
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    let filled = grid.run(&service).unwrap();
    grid.spec.template.options = PlannerOptions {
        bubble_filling: false,
        partial_batch: false,
    };
    let unfilled = grid.run(&service).unwrap();
    // Different knobs are different cache keys and different outcomes.
    assert_ne!(filled.points[0].fingerprint, unfilled.points[0].fingerprint);
    assert!(
        filled.points[0].throughput().unwrap() > unfilled.points[0].throughput().unwrap(),
        "bubble filling must win"
    );
}
