//! Property tests for request fingerprints and cache addressing.
//!
//! The plan cache is only sound if (a) fingerprints are a pure function of
//! request content, (b) distinct requests in the served configuration space
//! get distinct keys, and (c) a cache lookup never resolves to a value
//! stored under a different key.

use diffusionpipe_core::PlannerOptions;
use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_serve::{PlanRequest, ShardedCache};
use proptest::collection;
use proptest::prelude::*;
use std::collections::HashMap;

const ZOO: [fn() -> ModelSpec; 7] = [
    dpipe_model::zoo::stable_diffusion_v2_1,
    dpipe_model::zoo::controlnet_v1_0,
    dpipe_model::zoo::cdm_lsun,
    dpipe_model::zoo::cdm_imagenet,
    dpipe_model::zoo::dit_xl_2,
    dpipe_model::zoo::sdxl_base,
    dpipe_model::zoo::imagen_base,
];

/// A point in the served configuration space, as plain data.
type Key = (usize, usize, usize, u32, bool, bool);

fn request_for((model_idx, machines, gpus, batch, fill, partial): Key) -> PlanRequest {
    let cluster = ClusterSpec {
        devices_per_machine: gpus,
        ..ClusterSpec::p4de(machines)
    };
    PlanRequest::new(ZOO[model_idx](), cluster, batch).with_options(PlannerOptions {
        bubble_filling: fill,
        partial_batch: partial,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fingerprints_are_deterministic_and_batch_sensitive(
        model_idx in 0usize..7,
        machines in 1usize..4,
        gpus in 1usize..9,
        batch in 1u32..2048,
        fill in any::<bool>(),
        partial in any::<bool>(),
    ) {
        let key = (model_idx, machines, gpus, batch, fill, partial);
        // Two independently constructed requests for the same content agree.
        prop_assert_eq!(request_for(key).fingerprint(), request_for(key).fingerprint());
        // Any single-knob change moves the key.
        let base = request_for(key).fingerprint();
        let bumped = (model_idx, machines, gpus, batch + 1, fill, partial);
        prop_assert_ne!(request_for(bumped).fingerprint(), base);
        let toggled = (model_idx, machines, gpus, batch, !fill, partial);
        prop_assert_ne!(request_for(toggled).fingerprint(), base);
    }

    #[test]
    fn cache_lookup_never_crosses_fingerprints(
        keys in collection::vec(
            (0usize..7, 1usize..3, 1usize..9, 1u32..512, any::<bool>(), any::<bool>()),
            1..24,
        ),
        shards in 1usize..9,
    ) {
        // Store each fingerprint under itself: if a lookup ever resolved to
        // an entry stored under a different key, the returned value would
        // disagree with the queried fingerprint.
        let cache: ShardedCache<u64> = ShardedCache::new(shards);
        let prints: Vec<u64> = keys.iter().map(|&k| request_for(k).fingerprint()).collect();
        for &fp in &prints {
            let (value, _) = cache.get_or_compute(fp, || fp);
            prop_assert_eq!(value, fp);
        }
        for &fp in &prints {
            prop_assert_eq!(cache.get(fp), Some(fp));
            // A key that was never inserted must read as absent, even when
            // it lands on a populated shard.
            let absent = fp ^ 1;
            if !prints.contains(&absent) {
                prop_assert_eq!(cache.get(absent), None);
            }
        }
    }
}

#[test]
fn spec_redesign_kept_the_pre_spec_cache_keys() {
    // Pinned digests of the fingerprint byte layout the serving layer has
    // used since PR 2 (homogeneous) and PR 4 (mixed classes). Warm caches
    // key on these, so the PlanSpec-derived fingerprint must reproduce
    // them forever; any drift here invalidates every deployed cache.
    use dpipe_cluster::DeviceClass;
    let sd_8gpu = PlanRequest::new(
        dpipe_model::zoo::stable_diffusion_v2_1(),
        ClusterSpec::single_node(8),
        256,
    );
    assert_eq!(sd_8gpu.fingerprint(), 0x40d3171c7735cf82);
    let dit_16gpu = PlanRequest::new(dpipe_model::zoo::dit_xl_2(), ClusterSpec::p4de(2), 128);
    assert_eq!(dit_16gpu.fingerprint(), 0xb457e20337ded2cd);
    let sd_mixed = PlanRequest::new(
        dpipe_model::zoo::stable_diffusion_v2_1(),
        ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]),
        256,
    );
    assert_eq!(sd_mixed.fingerprint(), 0x7e7aa9da2bd43a0a);
}

#[test]
fn fingerprints_are_collision_free_across_the_config_space() {
    // Exhaustive cartesian space: 7 models x 2 machine counts x 3 widths
    // x 4 batches x 4 option combinations = 672 distinct requests.
    let mut seen: HashMap<u64, Key> = HashMap::new();
    for model_idx in 0..ZOO.len() {
        for machines in [1usize, 2] {
            for gpus in [2usize, 4, 8] {
                for batch in [32u32, 64, 128, 256] {
                    for fill in [false, true] {
                        for partial in [false, true] {
                            let key = (model_idx, machines, gpus, batch, fill, partial);
                            let fp = request_for(key).fingerprint();
                            if let Some(other) = seen.insert(fp, key) {
                                panic!("collision: {key:?} and {other:?} share {fp:016x}");
                            }
                        }
                    }
                }
            }
        }
    }
    assert_eq!(seen.len(), 7 * 2 * 3 * 4 * 4);
}
