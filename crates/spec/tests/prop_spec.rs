//! Property tests for the declarative spec API.
//!
//! The spec is only trustworthy as a cache key and a committed artifact if
//! (a) `spec -> to_json -> from_json` is identity with a byte-stable
//! re-encoding and a stable fingerprint, across the whole configuration
//! space including mixed-class clusters and inline models, and (b) the
//! hand-written parser rejects malformed documents (truncations, bad
//! escapes, unknown schema versions) instead of guessing.

use dpipe_cluster::{ClusterSpec, DeviceClass};
use dpipe_fill::FillConfig;
use dpipe_model::zoo;
use dpipe_schedule::ScheduleKind;
use dpipe_spec::{ClusterAxis, ModelRef, PlanSpec, PlannerOptions, SpecError, SweepSpec};
use proptest::prelude::*;

const ZOO: [&str; 7] = [
    "sd",
    "controlnet",
    "cdm-lsun",
    "cdm-imagenet",
    "dit",
    "sdxl",
    "imagen",
];

/// One point of the spec configuration space, as plain data: model index
/// (the last index is an *inline* synthetic model), cluster shape, batch,
/// a knob bitmask and a mixed-fleet toggle.
fn spec_for(
    model_idx: usize,
    machines: usize,
    gpus: usize,
    batch: u32,
    mixed: bool,
    knobs: usize,
) -> PlanSpec {
    let model = if model_idx < ZOO.len() {
        ModelRef::Zoo(ZOO[model_idx].to_owned())
    } else {
        ModelRef::Inline(zoo::tiny_model())
    };
    let cluster = if mixed {
        ClusterSpec::mixed(&[
            (DeviceClass::a100(), machines),
            (DeviceClass::h100(), machines),
            (DeviceClass::a10g(), 1),
        ])
    } else {
        ClusterSpec {
            devices_per_machine: gpus,
            ..ClusterSpec::p4de(machines)
        }
    };
    let mut spec = PlanSpec::new(model, cluster, batch).with_options(PlannerOptions {
        bubble_filling: knobs & 1 == 0,
        partial_batch: knobs & 2 == 0,
    });
    if knobs & 4 != 0 {
        spec = spec.with_schedule(ScheduleKind::GPipe);
    }
    if knobs & 8 != 0 {
        spec = spec.with_fill_config(FillConfig {
            min_bubble_seconds: 0.02,
            local_batch_candidates: vec![2, 4, 8],
            ..FillConfig::default()
        });
    }
    if knobs & 16 != 0 {
        spec = spec.with_record_backed(true).with_parallelism(knobs);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_identity_with_stable_fingerprint(
        model_idx in 0usize..8,
        machines in 1usize..4,
        gpus in 1usize..9,
        batch in 1u32..2048,
        mixed in any::<bool>(),
        knobs in 0usize..32,
    ) {
        let spec = spec_for(model_idx, machines, gpus, batch, mixed, knobs);
        let text = spec.to_json();
        let back = PlanSpec::from_json(&text).unwrap();
        prop_assert_eq!(&back, &spec, "round trip changed the spec");
        // Byte-stable canonical form: re-encoding reproduces the text.
        prop_assert_eq!(back.to_json(), text.clone());
        // The cache key survives serialization.
        prop_assert_eq!(
            back.fingerprint().unwrap(),
            spec.fingerprint().unwrap()
        );
        // And spec values are valid documents end to end.
        prop_assert!(dpipe_spec::json::parse(&text).is_ok());
    }

    #[test]
    fn truncated_documents_never_parse(
        model_idx in 0usize..8,
        mixed in any::<bool>(),
        cut in 1usize..4096,
    ) {
        let text = spec_for(model_idx, 2, 8, 256, mixed, 0).to_json();
        // Any strict prefix is malformed: the root object closes at the
        // very last byte. (The canonical encoding is ASCII, so byte
        // slicing cannot split a character.)
        let cut = cut.min(text.len() - 1);
        let err = PlanSpec::from_json(&text[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, SpecError::Json(_)),
            "truncation at {cut} gave a non-parse error: {err}"
        );
    }

    #[test]
    fn bad_escapes_and_unknown_versions_are_rejected(
        esc_idx in 0usize..6,
        version in 2u64..100_000,
    ) {
        // None of these characters opens a valid JSON escape.
        let bad = [b'q', b'x', b'0', b'U', b'a', b' '][esc_idx] as char;
        let text = format!(
            r#"{{"schema_version":1,"model":"s\{bad}d","cluster":{{}},"global_batch":8}}"#
        );
        let err = PlanSpec::from_json(&text).unwrap_err();
        prop_assert!(matches!(err, SpecError::Json(_)), "{err}");

        let text = format!(
            r#"{{"schema_version":{version},"model":"sd","cluster":{{}},"global_batch":8}}"#
        );
        prop_assert_eq!(
            PlanSpec::from_json(&text).unwrap_err(),
            SpecError::UnsupportedVersion(version)
        );
    }

    #[test]
    fn sweep_round_trip_including_mixed_axes(
        model_idx in 0usize..7,
        gpus in 1usize..9,
        a100s in 1usize..4,
        h100s in 1usize..4,
        batch in 1u32..1024,
    ) {
        let sweep = SweepSpec::new(spec_for(model_idx, 1, 8, batch, false, 0))
            .with_models(vec![
                ModelRef::Zoo(ZOO[model_idx].to_owned()),
                ModelRef::Inline(zoo::tiny_model()),
            ])
            .with_clusters(vec![
                ClusterAxis::GpuCount(gpus),
                ClusterAxis::MachineClasses(format!("a100:{a100s},h100:{h100s}")),
            ])
            .with_batches(vec![batch, batch + 1]);
        let text = sweep.to_json();
        let back = SweepSpec::from_json(&text).unwrap();
        prop_assert_eq!(&back, &sweep);
        prop_assert_eq!(back.to_json(), text);
        // Expansion reaches every point and substitutes the mixed fleet.
        let specs = back.specs().unwrap();
        prop_assert_eq!(specs.len(), 2 * 2 * 2);
        prop_assert!(specs.iter().any(|s| s.cluster.is_heterogeneous()));
        prop_assert!(
            specs.iter().all(|s| s.global_batch == batch || s.global_batch == batch + 1)
        );
    }
}

#[test]
fn mixed_class_spec_round_trips_with_exact_fingerprint() {
    // The acceptance-criteria case spelled out: a mixed-class cluster spec
    // survives the JSON round trip with an identical cache key, and its
    // key differs from the homogeneous cluster of the same shape.
    let mixed = PlanSpec::zoo(
        "sd",
        ClusterSpec::mixed(&[(DeviceClass::a100(), 4), (DeviceClass::h100(), 4)]),
        256,
    );
    let back = PlanSpec::from_json(&mixed.to_json()).unwrap();
    assert_eq!(back, mixed);
    assert_eq!(back.fingerprint().unwrap(), mixed.fingerprint().unwrap());
    let homo = PlanSpec::zoo("sd", ClusterSpec::p4de(8), 256);
    assert_ne!(
        mixed.fingerprint().unwrap(),
        homo.fingerprint().unwrap(),
        "mixed fleets must never share a cache key with homogeneous ones"
    );
}
