//! Planner feature toggles (re-homed from `diffusionpipe_core` so the
//! declarative spec layer can carry them without depending on the planner;
//! the core crate re-exports this type under its original path).

/// Feature toggles, used for the paper's Fig. 15 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Fill bubbles with the frozen part (the core contribution).
    pub bubble_filling: bool,
    /// Allow partial-batch layers inside bubbles.
    pub partial_batch: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            bubble_filling: true,
            partial_batch: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_both_features() {
        let o = PlannerOptions::default();
        assert!(o.bubble_filling);
        assert!(o.partial_batch);
    }
}
