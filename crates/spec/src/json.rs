//! A minimal JSON tree: emitter *and* parser.
//!
//! The workspace's `serde` is an inert offline shim (its derives expand to
//! nothing), so serialization has to be explicit. This module provides the
//! subset the declarative spec API needs: a [`JsonValue`] tree with a
//! spec-conformant `Display` (string escaping, non-finite numbers as
//! `null`), typed accessors, and a hand-written recursive-descent
//! [`parse`]r with positioned [`JsonError`] diagnostics.
//!
//! Number round-trip note: `Display` for `f64` uses Rust's shortest
//! round-trippable representation, and [`parse`] reads numbers back with
//! `str::parse`, so `value -> render -> parse` reproduces every finite
//! float bit-for-bit. Non-negative integers without a fraction or exponent
//! parse as [`JsonValue::UInt`]; [`JsonValue::as_f64`] accepts both, which
//! is what keeps integer-valued floats (e.g. a 140 GB/s bandwidth) stable
//! through a round trip.

use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The unsigned-integer payload, if this is a `UInt`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (`UInt` or `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Human-readable name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::UInt(_) | JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Num(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A positioned JSON syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (in bytes) of the offending byte.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected (guards the recursive parser's
/// stack against adversarial input).
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document. Trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the line/column of the first offending
/// byte: truncated documents, bad escapes, malformed numbers, duplicate
/// structure characters, trailing garbage, or nesting beyond 128 levels.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.value(0)?;
    p.skip_whitespace();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`, found {}",
                b as char,
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("`{}`", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_owned(),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input (truncated document)")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error(format!("unexpected {}", self.describe_here()))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `]` in array, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error(format!(
                    "expected a string key, found {}",
                    self.describe_here()
                )));
            }
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `}}` in object, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run stops at an ASCII
                // boundary byte, so the slice is valid UTF-8 too.
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(run) => out.push_str(run),
                    Err(_) => return Err(self.error("invalid utf-8 inside string")),
                }
            }
            match self.peek() {
                None => return Err(self.error("unterminated string (truncated document)")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("unpaired surrogate escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!(
                                "bad escape `\\{}`",
                                if other.is_ascii_graphic() {
                                    (other as char).to_string()
                                } else {
                                    format!("x{other:02x}")
                                }
                            )))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => unreachable!("run loop stops only at boundary bytes"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| {
                self.error(format!("bad hex digit `{}` in \\u escape", b as char))
            })?;
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let mut fractional = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0'..=b'9') => {}
            _ => return Err(self.error("malformed number (digit expected)")),
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("malformed number (digit expected after `.`)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("malformed number (digit expected in exponent)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(text) => text,
            Err(_) => return Err(self.error("malformed number (non-ascii byte)")),
        };
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Num(x)),
            _ => Err(self.error(format!("number `{text}` out of range"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_arrays_and_objects() {
        let v = JsonValue::Object(vec![
            ("a".to_owned(), JsonValue::UInt(3)),
            ("b".to_owned(), JsonValue::Num(0.5)),
            ("c".to_owned(), JsonValue::Bool(true)),
            (
                "d".to_owned(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Str("x".to_owned())]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":0.5,"c":true,"d":[null,"x"]}"#);
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let v = JsonValue::Array(vec![
            JsonValue::Str("a\"b\\c\nd\u{1}".to_owned()),
            JsonValue::Num(f64::NAN),
            JsonValue::Num(f64::INFINITY),
        ]);
        assert_eq!(v.to_string(), "[\"a\\\"b\\\\c\\nd\\u0001\",null,null]");
    }

    #[test]
    fn parses_what_it_renders() {
        let v = JsonValue::Object(vec![
            ("name".to_owned(), JsonValue::Str("π \"x\" \\\n".to_owned())),
            ("count".to_owned(), JsonValue::UInt(18446744073709551615)),
            ("scale".to_owned(), JsonValue::Num(2.2)),
            ("tiny".to_owned(), JsonValue::Num(8.0e-6)),
            ("big".to_owned(), JsonValue::Num(140.0e9)),
            ("on".to_owned(), JsonValue::Bool(false)),
            ("none".to_owned(), JsonValue::Null),
            (
                "list".to_owned(),
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Num(-0.25)]),
            ),
        ]);
        let parsed = parse(&v.to_string()).unwrap();
        // Integer-valued floats come back as UInt; compare through as_f64.
        assert_eq!(parsed.get("big").unwrap().as_f64(), Some(140.0e9));
        assert_eq!(parsed.get("scale").unwrap().as_f64(), Some(2.2));
        assert_eq!(parsed.get("tiny").unwrap().as_f64(), Some(8.0e-6));
        assert_eq!(
            parsed.get("count").unwrap().as_u64(),
            Some(18446744073709551615)
        );
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("π \"x\" \\\n"));
        assert_eq!(parsed.get("list").unwrap().as_array().unwrap().len(), 2);
        // Re-rendering the parsed tree reproduces the non-float fields and
        // every float byte-for-byte (shortest-repr round trip).
        assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse(r#""é😀\t""#).unwrap(),
            JsonValue::Str("é😀\t".to_owned())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents_with_positions() {
        for (text, needle) in [
            ("", "truncated"),
            ("{\"a\":", "truncated"),
            ("[1,2", "expected `,` or `]`"),
            ("{\"a\" 1}", "expected `:`"),
            ("\"ab", "unterminated string"),
            ("\"a\\q\"", "bad escape"),
            ("01x", "trailing"),
            ("1.", "digit expected after `.`"),
            ("1e", "digit expected in exponent"),
            ("nul", "invalid literal"),
            ("{\"a\":1}extra", "trailing"),
            ("{1:2}", "string key"),
            ("1e999", "out of range"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "`{text}` -> {err} (wanted `{needle}`)"
            );
        }
        let err = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!((err.line, err.column), (2, 8), "{err}");
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().message.contains("nesting"));
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        assert_eq!(parse("-3").unwrap(), JsonValue::Num(-3.0));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Num(2000.0));
        assert_eq!(parse("42").unwrap(), JsonValue::UInt(42));
    }
}
