//! Typed diagnostics for spec parsing, resolution and validation.

use crate::json::JsonError;
use std::fmt;

/// Why a spec could not be parsed, resolved or validated.
///
/// Every variant carries enough context to point the user at the offending
/// field (dotted paths like `cluster.machine_classes[2]`).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not well-formed JSON.
    Json(JsonError),
    /// The document's `schema_version` is not one this build understands.
    UnsupportedVersion(u64),
    /// A required field is absent.
    MissingField(String),
    /// A field this schema version does not define (typo guard: unknown
    /// fields are rejected, never silently ignored).
    UnknownField(String),
    /// A `model.zoo` name with no zoo entry.
    UnknownModel(String),
    /// A device-class name with no preset (`a100`, `h100`, `a10g`).
    UnknownClass(String),
    /// A present field with an unusable value (wrong type, zero batch,
    /// class/machine-count mismatch, ...).
    InvalidValue {
        /// Dotted path of the field.
        field: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl SpecError {
    /// Shorthand for [`SpecError::InvalidValue`].
    pub fn invalid(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SpecError::InvalidValue {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::UnsupportedVersion(v) => write!(
                f,
                "unsupported schema_version {v} (this build understands {})",
                crate::SCHEMA_VERSION
            ),
            SpecError::MissingField(field) => write!(f, "missing field `{field}`"),
            SpecError::UnknownField(field) => write!(f, "unknown field `{field}`"),
            SpecError::UnknownModel(name) => {
                write!(f, "unknown zoo model `{name}` (run `dpipe models`)")
            }
            SpecError::UnknownClass(name) => {
                write!(f, "unknown device class `{name}` (a100, h100, a10g)")
            }
            SpecError::InvalidValue { field, reason } => {
                write!(f, "invalid `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        assert!(SpecError::MissingField("model".into())
            .to_string()
            .contains("`model`"));
        assert!(SpecError::UnknownField("cluster.warp".into())
            .to_string()
            .contains("cluster.warp"));
        assert!(SpecError::UnknownClass("v100".into())
            .to_string()
            .contains("a10g"));
        assert!(SpecError::invalid("global_batch", "must be positive")
            .to_string()
            .contains("global_batch"));
        assert!(SpecError::UnsupportedVersion(99).to_string().contains("99"));
    }
}
