//! Shared decoding helpers: typed field access over [`JsonValue`] objects
//! with dotted-path diagnostics and unknown-field rejection.

use crate::error::SpecError;
use crate::json::JsonValue;

/// An object's fields plus the dotted path that names it in diagnostics.
#[derive(Debug)]
pub struct Fields<'a> {
    base: &'a str,
    fields: &'a [(String, JsonValue)],
}

impl<'a> Fields<'a> {
    /// Views `value` as an object.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidValue`] when `value` is not an object or a key
    /// occurs twice — a duplicated field in a hand-edited spec file would
    /// otherwise silently resolve to the first occurrence, which violates
    /// the schema's fail-loudly policy.
    pub fn new(value: &'a JsonValue, base: &'a str) -> Result<Self, SpecError> {
        let fields = value.as_object().ok_or_else(|| {
            SpecError::invalid(
                if base.is_empty() { "<root>" } else { base },
                format!("expected an object, found {}", value.type_name()),
            )
        })?;
        let this = Fields { base, fields };
        for (i, (key, _)) in fields.iter().enumerate() {
            if fields[..i].iter().any(|(earlier, _)| earlier == key) {
                return Err(SpecError::invalid(
                    this.path(key),
                    "field occurs more than once",
                ));
            }
        }
        Ok(this)
    }

    /// The dotted path of a field of this object.
    pub fn path(&self, key: &str) -> String {
        if self.base.is_empty() {
            key.to_owned()
        } else {
            format!("{}.{key}", self.base)
        }
    }

    /// Rejects any field whose key is not in `allowed` — typos in spec
    /// files fail loudly instead of silently planning something else.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownField`] naming the first unknown key.
    pub fn allow(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (key, _) in self.fields {
            if !allowed.contains(&key.as_str()) {
                return Err(SpecError::UnknownField(self.path(key)));
            }
        }
        Ok(())
    }

    /// Field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&'a JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field lookup that must succeed.
    ///
    /// # Errors
    ///
    /// [`SpecError::MissingField`] with the dotted path.
    pub fn require(&self, key: &str) -> Result<&'a JsonValue, SpecError> {
        self.get(key)
            .ok_or_else(|| SpecError::MissingField(self.path(key)))
    }
}

fn type_error(path: &str, wanted: &str, found: &JsonValue) -> SpecError {
    SpecError::invalid(
        path,
        format!("expected {wanted}, found {}", found.type_name()),
    )
}

/// `value` as a bool.
///
/// # Errors
///
/// [`SpecError::InvalidValue`] on a type mismatch.
pub fn as_bool(value: &JsonValue, path: &str) -> Result<bool, SpecError> {
    value
        .as_bool()
        .ok_or_else(|| type_error(path, "a bool", value))
}

/// `value` as a u64.
///
/// # Errors
///
/// [`SpecError::InvalidValue`] on a type mismatch or a negative/fractional
/// number.
pub fn as_u64(value: &JsonValue, path: &str) -> Result<u64, SpecError> {
    value
        .as_u64()
        .ok_or_else(|| type_error(path, "a non-negative integer", value))
}

/// `value` as a u32.
///
/// # Errors
///
/// See [`as_u64`]; additionally rejects values above `u32::MAX`.
pub fn as_u32(value: &JsonValue, path: &str) -> Result<u32, SpecError> {
    u32::try_from(as_u64(value, path)?)
        .map_err(|_| SpecError::invalid(path, "value exceeds u32::MAX"))
}

/// `value` as a usize.
///
/// # Errors
///
/// See [`as_u64`].
pub fn as_usize(value: &JsonValue, path: &str) -> Result<usize, SpecError> {
    usize::try_from(as_u64(value, path)?)
        .map_err(|_| SpecError::invalid(path, "value exceeds usize::MAX"))
}

/// `value` as a finite f64 (integers widen).
///
/// # Errors
///
/// [`SpecError::InvalidValue`] on a type mismatch.
pub fn as_f64(value: &JsonValue, path: &str) -> Result<f64, SpecError> {
    value
        .as_f64()
        .ok_or_else(|| type_error(path, "a number", value))
}

/// `value` as a string slice.
///
/// # Errors
///
/// [`SpecError::InvalidValue`] on a type mismatch.
pub fn as_str<'a>(value: &'a JsonValue, path: &str) -> Result<&'a str, SpecError> {
    value
        .as_str()
        .ok_or_else(|| type_error(path, "a string", value))
}

/// `value` as an array slice.
///
/// # Errors
///
/// [`SpecError::InvalidValue`] on a type mismatch.
pub fn as_array<'a>(value: &'a JsonValue, path: &str) -> Result<&'a [JsonValue], SpecError> {
    value
        .as_array()
        .ok_or_else(|| type_error(path, "an array", value))
}

/// Required u64 field.
///
/// # Errors
///
/// Missing field or type mismatch.
pub fn u64_field(fields: &Fields<'_>, key: &str) -> Result<u64, SpecError> {
    as_u64(fields.require(key)?, &fields.path(key))
}

/// Required u32 field.
///
/// # Errors
///
/// Missing field or type mismatch.
pub fn u32_field(fields: &Fields<'_>, key: &str) -> Result<u32, SpecError> {
    as_u32(fields.require(key)?, &fields.path(key))
}

/// Required f64 field.
///
/// # Errors
///
/// Missing field or type mismatch.
pub fn f64_field(fields: &Fields<'_>, key: &str) -> Result<f64, SpecError> {
    as_f64(fields.require(key)?, &fields.path(key))
}

/// Required string field (owned).
///
/// # Errors
///
/// Missing field or type mismatch.
pub fn str_field(fields: &Fields<'_>, key: &str) -> Result<String, SpecError> {
    Ok(as_str(fields.require(key)?, &fields.path(key))?.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn paths_are_dotted_and_unknown_fields_rejected() {
        let doc = parse(r#"{"a":{"b":1,"oops":2}}"#).unwrap();
        let outer = Fields::new(&doc, "").unwrap();
        assert_eq!(outer.path("a"), "a");
        let inner = Fields::new(outer.require("a").unwrap(), "a").unwrap();
        assert_eq!(inner.path("b"), "a.b");
        assert_eq!(
            inner.allow(&["b"]).unwrap_err(),
            SpecError::UnknownField("a.oops".to_owned())
        );
        assert_eq!(u64_field(&inner, "b").unwrap(), 1);
        assert_eq!(
            inner.require("missing").unwrap_err(),
            SpecError::MissingField("a.missing".to_owned())
        );
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let doc = parse(r#"{"a":{"b":1,"b":2}}"#).unwrap();
        let outer = Fields::new(&doc, "").unwrap();
        let err = Fields::new(outer.require("a").unwrap(), "a").unwrap_err();
        assert_eq!(
            err,
            SpecError::invalid("a.b", "field occurs more than once")
        );
    }

    #[test]
    fn typed_accessors_report_the_found_type() {
        let doc = parse(r#"{"x":"s"}"#).unwrap();
        let f = Fields::new(&doc, "").unwrap();
        let err = u64_field(&f, "x").unwrap_err();
        assert!(err.to_string().contains("found string"), "{err}");
        assert!(as_bool(f.require("x").unwrap(), "x").is_err());
        assert!(f64_field(&f, "x").is_err());
        assert_eq!(str_field(&f, "x").unwrap(), "s");
        // Fractional numbers are not integers.
        let doc = parse(r#"{"x":1.5}"#).unwrap();
        let f = Fields::new(&doc, "").unwrap();
        assert!(u32_field(&f, "x").is_err());
        assert!(as_usize(f.require("x").unwrap(), "x").is_err());
        assert_eq!(f64_field(&f, "x").unwrap(), 1.5);
    }
}
