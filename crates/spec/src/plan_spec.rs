//! [`PlanSpec`]: the one declarative description of a planning run.

use crate::decode::{self, f64_field, str_field, u32_field, u64_field, Fields};
use crate::error::SpecError;
use crate::json::{parse, JsonValue};
use crate::options::PlannerOptions;
use crate::SCHEMA_VERSION;
use dpipe_cluster::{ClusterSpec, DeviceClass, LinkParams};
use dpipe_fill::FillConfig;
use dpipe_model::{
    Component, ComponentId, LayerKind, LayerSpec, ModelSpec, Role, SelfConditioning,
};
use dpipe_partition::SearchSpace;
use dpipe_schedule::ScheduleKind;
use dpipe_stablehash::StableHasher;

/// The model a spec plans: a zoo name (resolved through
/// [`dpipe_model::zoo::by_name`]) or a complete inline [`ModelSpec`].
///
/// A zoo reference keeps spec files short and stable; an inline spec makes
/// arbitrary user models expressible as pure data. Both forms of the same
/// model produce the same [`PlanSpec::fingerprint`], so a spec file that
/// says `{"zoo":"sd"}` hits the same serve-cache entry as a programmatic
/// request built from `zoo::stable_diffusion_v2_1()`.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelRef {
    /// A name in the model zoo (short or full form).
    Zoo(String),
    /// A complete model description.
    Inline(ModelSpec),
}

impl ModelRef {
    /// Resolves the reference to a concrete model.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownModel`] for a zoo name with no entry.
    pub fn resolve(&self) -> Result<ModelSpec, SpecError> {
        match self {
            ModelRef::Zoo(name) => {
                dpipe_model::zoo::by_name(name).ok_or_else(|| SpecError::UnknownModel(name.clone()))
            }
            ModelRef::Inline(spec) => Ok(spec.clone()),
        }
    }

    /// The reference's display name without resolving (zoo name or the
    /// inline model's name).
    pub fn name(&self) -> &str {
        match self {
            ModelRef::Zoo(name) => name,
            ModelRef::Inline(spec) => &spec.name,
        }
    }
}

impl From<ModelSpec> for ModelRef {
    fn from(spec: ModelSpec) -> Self {
        ModelRef::Inline(spec)
    }
}

/// Everything one plan depends on, as a single versioned value.
///
/// This is the system's *canonical* planning input: `Planner::from_spec`,
/// `dpipe_serve::PlanRequest`, sweep grids, `dpipe plan --spec` and the
/// bench scenarios all consume exactly this type, and
/// [`to_json`](PlanSpec::to_json) / [`from_json`](PlanSpec::from_json)
/// round-trip it byte-stably so any run is reproducible as data.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Schema version of the serialized form (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The model to plan.
    pub model: ModelRef,
    /// The cluster to plan for, including per-machine device classes.
    pub cluster: ClusterSpec,
    /// Global batch size (per-backbone batch for cascaded models).
    pub global_batch: u32,
    /// Ablation toggles (Fig. 15).
    pub options: PlannerOptions,
    /// Hyper-parameter search bounds (Table 3).
    pub search: SearchSpace,
    /// Bubble-filling knobs (§5).
    pub fill: FillConfig,
    /// Single-backbone pipeline schedule family.
    pub schedule: ScheduleKind,
    /// Worker threads for the per-configuration search; `0` means "all
    /// cores". Deliberately *not* part of the fingerprint: the selected
    /// plan is identical for any worker count.
    pub parallelism: usize,
    /// Plan from record-backed (interpolated-sample) profiles instead of
    /// the analytic device model.
    pub record_backed: bool,
}

impl PlanSpec {
    /// A spec with default options, search space, fill config and
    /// schedule — the exact configuration `Planner::new(model, cluster)
    /// .plan(batch)` has always used.
    pub fn new(model: impl Into<ModelRef>, cluster: ClusterSpec, global_batch: u32) -> Self {
        PlanSpec {
            schema_version: SCHEMA_VERSION,
            model: model.into(),
            cluster,
            global_batch,
            options: PlannerOptions::default(),
            search: SearchSpace::default(),
            fill: FillConfig::default(),
            schedule: ScheduleKind::Fifo1F1B,
            parallelism: 0,
            record_backed: false,
        }
    }

    /// A spec referencing a zoo model by name (unresolved; resolution
    /// happens at plan/fingerprint time and can fail with
    /// [`SpecError::UnknownModel`]).
    pub fn zoo(name: impl Into<String>, cluster: ClusterSpec, global_batch: u32) -> Self {
        PlanSpec::new(ModelRef::Zoo(name.into()), cluster, global_batch)
    }

    /// Overrides the planner options.
    pub fn with_options(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the hyper-parameter search space.
    pub fn with_search_space(mut self, search: SearchSpace) -> Self {
        self.search = search;
        self
    }

    /// Overrides the bubble-filling configuration.
    pub fn with_fill_config(mut self, fill: FillConfig) -> Self {
        self.fill = fill;
        self
    }

    /// Overrides the single-backbone schedule family.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the per-configuration search parallelism (`0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Switches to record-backed profiling.
    pub fn with_record_backed(mut self, record_backed: bool) -> Self {
        self.record_backed = record_backed;
        self
    }

    /// The `parallelism` field with `0` resolved to the host's available
    /// parallelism.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }

    /// Short human-readable label, e.g. `sd@8gpu/b256`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}gpu/b{}",
            self.model.name(),
            self.cluster.world_size(),
            self.global_batch
        )
    }

    /// Checks the spec describes a plannable run: supported schema
    /// version, resolvable + valid model, non-degenerate cluster/batch and
    /// search bounds, sane fill knobs.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(SpecError::UnsupportedVersion(u64::from(
                self.schema_version,
            )));
        }
        if self.global_batch == 0 {
            return Err(SpecError::invalid("global_batch", "must be positive"));
        }
        if self.cluster.world_size() == 0 {
            return Err(SpecError::invalid("cluster", "cluster has no devices"));
        }
        self.cluster
            .validate_classes()
            .map_err(|e| SpecError::invalid("cluster.machine_classes", e))?;
        if self.search.max_stages == 0 {
            return Err(SpecError::invalid("search.max_stages", "must be positive"));
        }
        if self.search.max_micro_batches == 0 {
            return Err(SpecError::invalid(
                "search.max_micro_batches",
                "must be positive",
            ));
        }
        if !(self.fill.min_bubble_seconds.is_finite() && self.fill.min_bubble_seconds >= 0.0) {
            return Err(SpecError::invalid(
                "fill.min_bubble_seconds",
                "must be finite and non-negative",
            ));
        }
        if !(self.fill.item_setup_seconds.is_finite() && self.fill.item_setup_seconds >= 0.0) {
            return Err(SpecError::invalid(
                "fill.item_setup_seconds",
                "must be finite and non-negative",
            ));
        }
        let model = self.model.resolve()?;
        model
            .validate()
            .map_err(|e| SpecError::invalid("model", e.to_string()))?;
        Ok(())
    }

    /// Stable 64-bit content fingerprint of the spec — the serve-layer
    /// plan-cache key.
    ///
    /// The digest is a pure function of the spec's planning-relevant
    /// content: zoo and inline references to the same model hash
    /// identically, and `parallelism` is excluded (any worker count
    /// selects the same plan). The byte layout deliberately reproduces the
    /// pre-spec `dpipe_serve::PlanRequest` fingerprint — including its
    /// domain string — and only *extends* the digest when fill config or
    /// schedule differ from their defaults, so every fingerprint minted
    /// before this API existed (homogeneous and mixed-class alike) is
    /// unchanged: warm serve caches and committed goldens survive.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownModel`] if a zoo reference does not resolve.
    pub fn fingerprint(&self) -> Result<u64, SpecError> {
        Ok(self.fingerprint_with_model(&self.model.resolve()?))
    }

    /// [`PlanSpec::fingerprint`] with the model already resolved (callers
    /// that hold a resolved model avoid re-resolution and the error path).
    pub fn fingerprint_with_model(&self, model: &ModelSpec) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dpipe_serve::PlanRequest");
        h.write_u64(model.fingerprint());
        h.write_u64(self.cluster.fingerprint());
        h.write_u32(self.global_batch);
        h.write_bool(self.options.bubble_filling);
        h.write_bool(self.options.partial_batch);
        h.write_usize(self.search.max_stages);
        h.write_usize(self.search.max_micro_batches);
        h.write_bool(self.record_backed);
        if self.fill != FillConfig::default() {
            h.write_str("fill");
            h.write_f64(self.fill.min_bubble_seconds);
            h.write_bool(self.fill.partial_batch);
            h.write_usize(self.fill.local_batch_candidates.len());
            for &c in &self.fill.local_batch_candidates {
                h.write_u32(c);
            }
            h.write_f64(self.fill.item_setup_seconds);
        }
        if self.schedule != ScheduleKind::Fifo1F1B {
            h.write_str("schedule");
            h.write_str(schedule_str(self.schedule));
        }
        h.finish()
    }

    /// The canonical JSON tree: every field explicit, insertion order
    /// fixed, floats in shortest round-trippable form. Rendering this tree
    /// is byte-deterministic, which is what makes "the spec" a stable
    /// artifact to commit, diff and fingerprint.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".to_owned(),
                JsonValue::UInt(u64::from(self.schema_version)),
            ),
            ("model".to_owned(), model_ref_to_json(&self.model)),
            ("cluster".to_owned(), cluster_to_json(&self.cluster)),
            (
                "global_batch".to_owned(),
                JsonValue::UInt(u64::from(self.global_batch)),
            ),
            ("options".to_owned(), options_to_json(&self.options)),
            ("search".to_owned(), search_to_json(&self.search)),
            ("fill".to_owned(), fill_to_json(&self.fill)),
            (
                "schedule".to_owned(),
                JsonValue::Str(schedule_str(self.schedule).to_owned()),
            ),
            (
                "parallelism".to_owned(),
                JsonValue::UInt(self.parallelism as u64),
            ),
            (
                "record_backed".to_owned(),
                JsonValue::Bool(self.record_backed),
            ),
        ])
    }

    /// The canonical JSON encoding as a string (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parses a spec from its JSON encoding. Unknown fields are rejected
    /// (never silently ignored); absent optional fields take the same
    /// defaults as [`PlanSpec::new`]; `schema_version`, `model`, `cluster`
    /// and `global_batch` are required.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] for malformed JSON, otherwise a typed
    /// diagnostic naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_json_value(&parse(text)?)
    }

    /// [`PlanSpec::from_json`] over an already-parsed tree.
    ///
    /// # Errors
    ///
    /// See [`PlanSpec::from_json`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, SpecError> {
        let fields = Fields::new(value, "")?;
        fields.allow(&[
            "schema_version",
            "model",
            "cluster",
            "global_batch",
            "options",
            "search",
            "fill",
            "schedule",
            "parallelism",
            "record_backed",
        ])?;
        let version = u64_field(&fields, "schema_version")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(SpecError::UnsupportedVersion(version));
        }
        let model = model_ref_from_json(fields.require("model")?, "model")?;
        let cluster = cluster_from_json(fields.require("cluster")?, "cluster")?;
        let global_batch = u32_field(&fields, "global_batch")?;
        let options = match fields.get("options") {
            Some(v) => options_from_json(v, "options")?,
            None => PlannerOptions::default(),
        };
        let search = match fields.get("search") {
            Some(v) => search_from_json(v, "search")?,
            None => SearchSpace::default(),
        };
        let fill = match fields.get("fill") {
            Some(v) => fill_from_json(v, "fill")?,
            None => FillConfig::default(),
        };
        let schedule = match fields.get("schedule") {
            Some(v) => schedule_from_json(v, "schedule")?,
            None => ScheduleKind::Fifo1F1B,
        };
        let parallelism = match fields.get("parallelism") {
            Some(v) => decode::as_usize(v, "parallelism")?,
            None => 0,
        };
        let record_backed = match fields.get("record_backed") {
            Some(v) => decode::as_bool(v, "record_backed")?,
            None => false,
        };
        Ok(PlanSpec {
            schema_version: SCHEMA_VERSION,
            model,
            cluster,
            global_batch,
            options,
            search,
            fill,
            schedule,
            parallelism,
            record_backed,
        })
    }
}

// ---------------------------------------------------------------------------
// Field codecs. Emission is canonical (every field, fixed order); parsing
// accepts shorthands (zoo names as strings, `"a100:4,h100:4"` class specs)
// and rejects unknown fields.
// ---------------------------------------------------------------------------

/// Serialized name of a [`ScheduleKind`].
pub fn schedule_str(kind: ScheduleKind) -> &'static str {
    match kind {
        ScheduleKind::Fifo1F1B => "1f1b",
        ScheduleKind::GPipe => "gpipe",
    }
}

fn schedule_from_json(v: &JsonValue, path: &str) -> Result<ScheduleKind, SpecError> {
    match decode::as_str(v, path)? {
        "1f1b" => Ok(ScheduleKind::Fifo1F1B),
        "gpipe" => Ok(ScheduleKind::GPipe),
        other => Err(SpecError::invalid(
            path,
            format!("unknown schedule `{other}` (1f1b, gpipe)"),
        )),
    }
}

/// Encodes a [`ModelRef`] (`{"zoo":name}` or `{"inline":{...}}`).
pub fn model_ref_to_json(m: &ModelRef) -> JsonValue {
    match m {
        ModelRef::Zoo(name) => {
            JsonValue::Object(vec![("zoo".to_owned(), JsonValue::Str(name.clone()))])
        }
        ModelRef::Inline(spec) => {
            JsonValue::Object(vec![("inline".to_owned(), model_to_json(spec))])
        }
    }
}

/// Parses a [`ModelRef`]: a bare zoo-name string, `{"zoo":name}` or
/// `{"inline":{...}}`.
///
/// # Errors
///
/// A typed [`SpecError`] naming the offending field.
pub fn model_ref_from_json(v: &JsonValue, path: &str) -> Result<ModelRef, SpecError> {
    // Shorthand: a bare string is a zoo reference.
    if let Some(name) = v.as_str() {
        return Ok(ModelRef::Zoo(name.to_owned()));
    }
    let fields = Fields::new(v, path)?;
    fields.allow(&["zoo", "inline"])?;
    match (fields.get("zoo"), fields.get("inline")) {
        (Some(name), None) => Ok(ModelRef::Zoo(
            decode::as_str(name, &format!("{path}.zoo"))?.to_owned(),
        )),
        (None, Some(spec)) => Ok(ModelRef::Inline(model_from_json(
            spec,
            &format!("{path}.inline"),
        )?)),
        _ => Err(SpecError::invalid(
            path,
            "exactly one of `zoo` or `inline` must be set",
        )),
    }
}

/// Serialized name of a [`Role`].
fn role_str(role: Role) -> &'static str {
    match role {
        Role::Backbone => "backbone",
        Role::Frozen => "frozen",
    }
}

fn role_from_json(v: &JsonValue, path: &str) -> Result<Role, SpecError> {
    match decode::as_str(v, path)? {
        "backbone" => Ok(Role::Backbone),
        "frozen" => Ok(Role::Frozen),
        other => Err(SpecError::invalid(
            path,
            format!("unknown role `{other}` (backbone, frozen)"),
        )),
    }
}

/// Serialized name of a [`LayerKind`] (the `Display` strings).
fn kind_str(kind: LayerKind) -> &'static str {
    match kind {
        LayerKind::Conv => "conv",
        LayerKind::Attention => "attn",
        LayerKind::Transformer => "xfmr",
        LayerKind::Linear => "linear",
        LayerKind::Embedding => "embed",
        LayerKind::Norm => "norm",
        LayerKind::Resample => "resample",
    }
}

fn kind_from_json(v: &JsonValue, path: &str) -> Result<LayerKind, SpecError> {
    match decode::as_str(v, path)? {
        "conv" => Ok(LayerKind::Conv),
        "attn" => Ok(LayerKind::Attention),
        "xfmr" => Ok(LayerKind::Transformer),
        "linear" => Ok(LayerKind::Linear),
        "embed" => Ok(LayerKind::Embedding),
        "norm" => Ok(LayerKind::Norm),
        "resample" => Ok(LayerKind::Resample),
        other => Err(SpecError::invalid(
            path,
            format!("unknown layer kind `{other}`"),
        )),
    }
}

fn layer_to_json(l: &LayerSpec) -> JsonValue {
    JsonValue::Object(vec![
        ("name".to_owned(), JsonValue::Str(l.name.clone())),
        (
            "kind".to_owned(),
            JsonValue::Str(kind_str(l.kind).to_owned()),
        ),
        ("param_count".to_owned(), JsonValue::UInt(l.param_count)),
        (
            "flops_per_sample".to_owned(),
            JsonValue::Num(l.flops_per_sample),
        ),
        ("backward_mult".to_owned(), JsonValue::Num(l.backward_mult)),
        (
            "out_bytes_per_sample".to_owned(),
            JsonValue::UInt(l.out_bytes_per_sample),
        ),
        ("overhead_us".to_owned(), JsonValue::Num(l.overhead_us)),
    ])
}

fn layer_from_json(v: &JsonValue, path: &str) -> Result<LayerSpec, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&[
        "name",
        "kind",
        "param_count",
        "flops_per_sample",
        "backward_mult",
        "out_bytes_per_sample",
        "overhead_us",
    ])?;
    Ok(LayerSpec {
        name: str_field(&fields, "name")?,
        kind: kind_from_json(fields.require("kind")?, &fields.path("kind"))?,
        param_count: u64_field(&fields, "param_count")?,
        flops_per_sample: f64_field(&fields, "flops_per_sample")?,
        backward_mult: match fields.get("backward_mult") {
            Some(v) => decode::as_f64(v, &fields.path("backward_mult"))?,
            None => 2.0,
        },
        out_bytes_per_sample: u64_field(&fields, "out_bytes_per_sample")?,
        overhead_us: match fields.get("overhead_us") {
            Some(v) => decode::as_f64(v, &fields.path("overhead_us"))?,
            None => 50.0,
        },
    })
}

fn component_to_json(c: &Component) -> JsonValue {
    JsonValue::Object(vec![
        ("name".to_owned(), JsonValue::Str(c.name.clone())),
        (
            "role".to_owned(),
            JsonValue::Str(role_str(c.role).to_owned()),
        ),
        (
            "deps".to_owned(),
            JsonValue::Array(
                c.deps
                    .iter()
                    .map(|d| JsonValue::UInt(d.index() as u64))
                    .collect(),
            ),
        ),
        (
            "layers".to_owned(),
            JsonValue::Array(c.layers.iter().map(layer_to_json).collect()),
        ),
    ])
}

fn component_from_json(v: &JsonValue, path: &str) -> Result<Component, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&["name", "role", "deps", "layers"])?;
    let deps = match fields.get("deps") {
        Some(v) => decode::as_array(v, &fields.path("deps"))?
            .iter()
            .enumerate()
            .map(|(i, d)| {
                decode::as_usize(d, &format!("{}[{i}]", fields.path("deps"))).map(ComponentId)
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    let layers_path = fields.path("layers");
    let layers = decode::as_array(fields.require("layers")?, &layers_path)?
        .iter()
        .enumerate()
        .map(|(i, l)| layer_from_json(l, &format!("{layers_path}[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Component {
        name: str_field(&fields, "name")?,
        role: role_from_json(fields.require("role")?, &fields.path("role"))?,
        layers,
        deps,
    })
}

/// Full inline encoding of a [`ModelSpec`].
pub fn model_to_json(m: &ModelSpec) -> JsonValue {
    let mut fields = vec![
        ("name".to_owned(), JsonValue::Str(m.name.clone())),
        (
            "components".to_owned(),
            JsonValue::Array(m.components.iter().map(component_to_json).collect()),
        ),
    ];
    if let Some(sc) = m.self_conditioning {
        fields.push((
            "self_conditioning".to_owned(),
            JsonValue::Object(vec![(
                "probability".to_owned(),
                JsonValue::Num(sc.probability),
            )]),
        ));
    }
    if !m.input_shapes.is_empty() {
        fields.push((
            "input_shapes".to_owned(),
            JsonValue::Array(
                m.input_shapes
                    .iter()
                    .map(|&(h, w)| {
                        JsonValue::Array(vec![
                            JsonValue::UInt(u64::from(h)),
                            JsonValue::UInt(u64::from(w)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    JsonValue::Object(fields)
}

/// Parses an inline [`ModelSpec`].
///
/// # Errors
///
/// A typed [`SpecError`] naming the offending field.
pub fn model_from_json(v: &JsonValue, path: &str) -> Result<ModelSpec, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&["name", "components", "self_conditioning", "input_shapes"])?;
    let components_path = fields.path("components");
    let components = decode::as_array(fields.require("components")?, &components_path)?
        .iter()
        .enumerate()
        .map(|(i, c)| component_from_json(c, &format!("{components_path}[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let self_conditioning = match fields.get("self_conditioning") {
        None | Some(JsonValue::Null) => None,
        Some(v) => {
            let sc_path = fields.path("self_conditioning");
            let sc = Fields::new(v, &sc_path)?;
            sc.allow(&["probability"])?;
            Some(SelfConditioning {
                probability: f64_field(&sc, "probability")?,
            })
        }
    };
    let input_shapes = match fields.get("input_shapes") {
        Some(v) => {
            let shapes_path = fields.path("input_shapes");
            decode::as_array(v, &shapes_path)?
                .iter()
                .enumerate()
                .map(|(i, pair)| {
                    let pair_path = format!("{shapes_path}[{i}]");
                    let items = decode::as_array(pair, &pair_path)?;
                    if items.len() != 2 {
                        return Err(SpecError::invalid(&pair_path, "expected [height, width]"));
                    }
                    let h = decode::as_u32(&items[0], &pair_path)?;
                    let w = decode::as_u32(&items[1], &pair_path)?;
                    Ok((h, w))
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };
    Ok(ModelSpec {
        name: str_field(&fields, "name")?,
        components,
        self_conditioning,
        input_shapes,
    })
}

fn link_to_json(l: &LinkParams) -> JsonValue {
    JsonValue::Object(vec![
        ("bandwidth".to_owned(), JsonValue::Num(l.bandwidth)),
        ("latency".to_owned(), JsonValue::Num(l.latency)),
    ])
}

fn link_from_json(v: &JsonValue, path: &str, default: LinkParams) -> Result<LinkParams, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&["bandwidth", "latency"])?;
    Ok(LinkParams {
        bandwidth: match fields.get("bandwidth") {
            Some(v) => decode::as_f64(v, &fields.path("bandwidth"))?,
            None => default.bandwidth,
        },
        latency: match fields.get("latency") {
            Some(v) => decode::as_f64(v, &fields.path("latency"))?,
            None => default.latency,
        },
    })
}

fn class_to_json(c: &DeviceClass) -> JsonValue {
    JsonValue::Object(vec![
        ("name".to_owned(), JsonValue::Str(c.name.clone())),
        ("compute_scale".to_owned(), JsonValue::Num(c.compute_scale)),
        ("memory_bytes".to_owned(), JsonValue::UInt(c.memory_bytes)),
        ("link_scale".to_owned(), JsonValue::Num(c.link_scale)),
    ])
}

fn class_from_json(v: &JsonValue, path: &str) -> Result<DeviceClass, SpecError> {
    // Shorthand: a preset name.
    if let Some(name) = v.as_str() {
        return DeviceClass::by_name(name).ok_or_else(|| SpecError::UnknownClass(name.to_owned()));
    }
    let fields = Fields::new(v, path)?;
    fields.allow(&["name", "compute_scale", "memory_bytes", "link_scale"])?;
    Ok(DeviceClass {
        name: str_field(&fields, "name")?,
        compute_scale: f64_field(&fields, "compute_scale")?,
        memory_bytes: u64_field(&fields, "memory_bytes")?,
        link_scale: f64_field(&fields, "link_scale")?,
    })
}

/// Full encoding of a [`ClusterSpec`] (classes as explicit objects).
pub fn cluster_to_json(c: &ClusterSpec) -> JsonValue {
    JsonValue::Object(vec![
        ("machines".to_owned(), JsonValue::UInt(c.machines as u64)),
        (
            "devices_per_machine".to_owned(),
            JsonValue::UInt(c.devices_per_machine as u64),
        ),
        ("intra_link".to_owned(), link_to_json(&c.intra_link)),
        ("inter_link".to_owned(), link_to_json(&c.inter_link)),
        (
            "spine_oversubscription".to_owned(),
            JsonValue::Num(c.spine_oversubscription),
        ),
        (
            "device_memory_bytes".to_owned(),
            JsonValue::UInt(c.device_memory_bytes),
        ),
        (
            "machine_classes".to_owned(),
            JsonValue::Array(c.machine_classes.iter().map(class_to_json).collect()),
        ),
    ])
}

/// Parses a [`ClusterSpec`]. Absent link/memory fields default to the
/// p4de-class calibration (the values every constructor uses);
/// `machine_classes` accepts explicit class objects, preset-name strings,
/// or — for the whole field — a `"a100:4,h100:4"` machine spec string.
///
/// # Errors
///
/// A typed [`SpecError`]; unknown class names surface as
/// [`SpecError::UnknownClass`].
pub fn cluster_from_json(v: &JsonValue, path: &str) -> Result<ClusterSpec, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&[
        "machines",
        "devices_per_machine",
        "intra_link",
        "inter_link",
        "spine_oversubscription",
        "device_memory_bytes",
        "machine_classes",
    ])?;
    let machine_classes = match fields.get("machine_classes") {
        None => Vec::new(),
        Some(JsonValue::Str(spec)) => DeviceClass::parse_machine_spec(spec).map_err(|e| {
            if e.starts_with("unknown device class") {
                // Extract the offending name for the typed variant.
                let name = e.split('`').nth(1).unwrap_or("?").to_owned();
                SpecError::UnknownClass(name)
            } else {
                SpecError::invalid(fields.path("machine_classes"), e)
            }
        })?,
        Some(v) => {
            let classes_path = fields.path("machine_classes");
            decode::as_array(v, &classes_path)?
                .iter()
                .enumerate()
                .map(|(i, c)| class_from_json(c, &format!("{classes_path}[{i}]")))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    // The machine count defaults to the class list's length (one class per
    // machine) and otherwise to 1.
    let machines = match fields.get("machines") {
        Some(v) => decode::as_usize(v, &fields.path("machines"))?,
        None if !machine_classes.is_empty() => machine_classes.len(),
        None => 1,
    };
    let reference = ClusterSpec::p4de(machines.max(1));
    Ok(ClusterSpec {
        machines,
        devices_per_machine: match fields.get("devices_per_machine") {
            Some(v) => decode::as_usize(v, &fields.path("devices_per_machine"))?,
            None => 8,
        },
        intra_link: match fields.get("intra_link") {
            Some(v) => link_from_json(v, &fields.path("intra_link"), reference.intra_link)?,
            None => reference.intra_link,
        },
        inter_link: match fields.get("inter_link") {
            Some(v) => link_from_json(v, &fields.path("inter_link"), reference.inter_link)?,
            None => reference.inter_link,
        },
        spine_oversubscription: match fields.get("spine_oversubscription") {
            Some(v) => decode::as_f64(v, &fields.path("spine_oversubscription"))?,
            None => reference.spine_oversubscription,
        },
        device_memory_bytes: match fields.get("device_memory_bytes") {
            Some(v) => decode::as_u64(v, &fields.path("device_memory_bytes"))?,
            None => reference.device_memory_bytes,
        },
        machine_classes,
    })
}

fn options_to_json(o: &PlannerOptions) -> JsonValue {
    JsonValue::Object(vec![
        (
            "bubble_filling".to_owned(),
            JsonValue::Bool(o.bubble_filling),
        ),
        ("partial_batch".to_owned(), JsonValue::Bool(o.partial_batch)),
    ])
}

fn options_from_json(v: &JsonValue, path: &str) -> Result<PlannerOptions, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&["bubble_filling", "partial_batch"])?;
    let default = PlannerOptions::default();
    Ok(PlannerOptions {
        bubble_filling: match fields.get("bubble_filling") {
            Some(v) => decode::as_bool(v, &fields.path("bubble_filling"))?,
            None => default.bubble_filling,
        },
        partial_batch: match fields.get("partial_batch") {
            Some(v) => decode::as_bool(v, &fields.path("partial_batch"))?,
            None => default.partial_batch,
        },
    })
}

fn search_to_json(s: &SearchSpace) -> JsonValue {
    JsonValue::Object(vec![
        (
            "max_stages".to_owned(),
            JsonValue::UInt(s.max_stages as u64),
        ),
        (
            "max_micro_batches".to_owned(),
            JsonValue::UInt(s.max_micro_batches as u64),
        ),
    ])
}

fn search_from_json(v: &JsonValue, path: &str) -> Result<SearchSpace, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&["max_stages", "max_micro_batches"])?;
    let default = SearchSpace::default();
    Ok(SearchSpace {
        max_stages: match fields.get("max_stages") {
            Some(v) => decode::as_usize(v, &fields.path("max_stages"))?,
            None => default.max_stages,
        },
        max_micro_batches: match fields.get("max_micro_batches") {
            Some(v) => decode::as_usize(v, &fields.path("max_micro_batches"))?,
            None => default.max_micro_batches,
        },
    })
}

fn fill_to_json(f: &FillConfig) -> JsonValue {
    JsonValue::Object(vec![
        (
            "min_bubble_seconds".to_owned(),
            JsonValue::Num(f.min_bubble_seconds),
        ),
        ("partial_batch".to_owned(), JsonValue::Bool(f.partial_batch)),
        (
            "local_batch_candidates".to_owned(),
            JsonValue::Array(
                f.local_batch_candidates
                    .iter()
                    .map(|&c| JsonValue::UInt(u64::from(c)))
                    .collect(),
            ),
        ),
        (
            "item_setup_seconds".to_owned(),
            JsonValue::Num(f.item_setup_seconds),
        ),
    ])
}

fn fill_from_json(v: &JsonValue, path: &str) -> Result<FillConfig, SpecError> {
    let fields = Fields::new(v, path)?;
    fields.allow(&[
        "min_bubble_seconds",
        "partial_batch",
        "local_batch_candidates",
        "item_setup_seconds",
    ])?;
    let default = FillConfig::default();
    Ok(FillConfig {
        min_bubble_seconds: match fields.get("min_bubble_seconds") {
            Some(v) => decode::as_f64(v, &fields.path("min_bubble_seconds"))?,
            None => default.min_bubble_seconds,
        },
        partial_batch: match fields.get("partial_batch") {
            Some(v) => decode::as_bool(v, &fields.path("partial_batch"))?,
            None => default.partial_batch,
        },
        local_batch_candidates: match fields.get("local_batch_candidates") {
            Some(v) => {
                let list_path = fields.path("local_batch_candidates");
                decode::as_array(v, &list_path)?
                    .iter()
                    .enumerate()
                    .map(|(i, c)| decode::as_u32(c, &format!("{list_path}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => default.local_batch_candidates,
        },
        item_setup_seconds: match fields.get("item_setup_seconds") {
            Some(v) => decode::as_f64(v, &fields.path("item_setup_seconds"))?,
            None => default.item_setup_seconds,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    fn mixed_cluster() -> ClusterSpec {
        ClusterSpec::mixed(&[(DeviceClass::a100(), 2), (DeviceClass::h100(), 2)])
    }

    #[test]
    fn canonical_json_round_trips_zoo_and_inline_specs() {
        let specs = [
            PlanSpec::zoo("sd", ClusterSpec::single_node(8), 256),
            PlanSpec::new(zoo::dit_xl_2(), ClusterSpec::p4de(2), 128)
                .with_options(PlannerOptions {
                    bubble_filling: false,
                    partial_batch: true,
                })
                .with_search_space(SearchSpace {
                    max_stages: 4,
                    max_micro_batches: 6,
                })
                .with_schedule(ScheduleKind::GPipe)
                .with_parallelism(4)
                .with_record_backed(true),
            PlanSpec::zoo("sdxl", mixed_cluster(), 512)
                .with_fill_config(FillConfig::default().without_partial_batch()),
        ];
        for spec in specs {
            let text = spec.to_json();
            let back = PlanSpec::from_json(&text).unwrap();
            assert_eq!(back, spec, "round trip changed the spec:\n{text}");
            // Byte-stable: re-encoding the parsed spec reproduces the text.
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn zoo_and_inline_forms_of_the_same_model_share_a_fingerprint() {
        let cluster = ClusterSpec::single_node(8);
        let by_name = PlanSpec::zoo("sd", cluster.clone(), 256);
        let inline = PlanSpec::new(zoo::stable_diffusion_v2_1(), cluster, 256);
        assert_eq!(
            by_name.fingerprint().unwrap(),
            inline.fingerprint().unwrap()
        );
        // But the JSON encodings differ (the reference is preserved).
        assert_ne!(by_name.to_json(), inline.to_json());
    }

    #[test]
    fn fingerprint_extends_only_for_non_default_fill_and_schedule() {
        let base = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 256);
        let fp = base.fingerprint().unwrap();
        let with_fill = base
            .clone()
            .with_fill_config(FillConfig::default().without_partial_batch());
        let with_sched = base.clone().with_schedule(ScheduleKind::GPipe);
        let with_workers = base.clone().with_parallelism(7);
        assert_ne!(with_fill.fingerprint().unwrap(), fp);
        assert_ne!(with_sched.fingerprint().unwrap(), fp);
        assert_ne!(
            with_fill.fingerprint().unwrap(),
            with_sched.fingerprint().unwrap()
        );
        // Parallelism is a sizing knob, never a cache key.
        assert_eq!(with_workers.fingerprint().unwrap(), fp);
    }

    #[test]
    fn shorthand_forms_parse() {
        let text = r#"{
            "schema_version": 1,
            "model": "sd",
            "cluster": {"machine_classes": "a100:2,h100:2"},
            "global_batch": 256
        }"#;
        let spec = PlanSpec::from_json(text).unwrap();
        assert_eq!(spec.model, ModelRef::Zoo("sd".to_owned()));
        assert_eq!(spec.cluster.machines, 4);
        assert_eq!(spec.cluster.world_size(), 32);
        assert!(spec.cluster.is_heterogeneous());
        assert_eq!(spec.cluster, mixed_cluster());
        assert_eq!(spec.options, PlannerOptions::default());
        assert_eq!(spec.fill, FillConfig::default());
        assert_eq!(spec.schedule, ScheduleKind::Fifo1F1B);
        spec.validate().unwrap();
        // The shorthand and the canonical encoding are the same spec.
        assert_eq!(PlanSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn typed_errors_name_the_problem() {
        let base = |model: &str, extra: &str| {
            format!(
                r#"{{"schema_version":1,"model":{model},"cluster":{{"machines":1}},"global_batch":64{extra}}}"#
            )
        };
        // Unknown field.
        let err = PlanSpec::from_json(&base("\"sd\"", ",\"warp\":1")).unwrap_err();
        assert_eq!(err, SpecError::UnknownField("warp".to_owned()));
        // Unknown schema version.
        let err = PlanSpec::from_json(
            r#"{"schema_version":99,"model":"sd","cluster":{},"global_batch":64}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnsupportedVersion(99));
        // Unknown zoo model resolves lazily.
        let spec = PlanSpec::from_json(&base("\"warpdrive\"", "")).unwrap();
        assert_eq!(
            spec.validate().unwrap_err(),
            SpecError::UnknownModel("warpdrive".to_owned())
        );
        // Bad class name.
        let err = PlanSpec::from_json(
            r#"{"schema_version":1,"model":"sd","cluster":{"machine_classes":"v100:2"},"global_batch":64}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownClass("v100".to_owned()));
        let err = PlanSpec::from_json(
            r#"{"schema_version":1,"model":"sd","cluster":{"machine_classes":["v100"]},"global_batch":64}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownClass("v100".to_owned()));
        // Zero batch is a validation error, not a parse error.
        let spec = PlanSpec::from_json(
            r#"{"schema_version":1,"model":"sd","cluster":{"machines":1},"global_batch":0}"#,
        )
        .unwrap();
        assert!(matches!(
            spec.validate().unwrap_err(),
            SpecError::InvalidValue { field, .. } if field == "global_batch"
        ));
        // Missing required field.
        let err =
            PlanSpec::from_json(r#"{"schema_version":1,"model":"sd","cluster":{}}"#).unwrap_err();
        assert_eq!(err, SpecError::MissingField("global_batch".to_owned()));
        // Malformed JSON is a positioned Json error.
        assert!(matches!(
            PlanSpec::from_json("{\"schema_version\":").unwrap_err(),
            SpecError::Json(_)
        ));
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let ok = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 64);
        ok.validate().unwrap();
        let no_devices = PlanSpec::zoo("sd", ClusterSpec::single_node(0), 64);
        assert!(no_devices.validate().is_err());
        let bad_classes = PlanSpec::zoo(
            "sd",
            ClusterSpec::p4de(4).with_machine_classes(vec![DeviceClass::h100()]),
            64,
        );
        assert!(matches!(
            bad_classes.validate().unwrap_err(),
            SpecError::InvalidValue { field, .. } if field.contains("machine_classes")
        ));
        let zero_search = ok.clone().with_search_space(SearchSpace {
            max_stages: 0,
            max_micro_batches: 8,
        });
        assert!(zero_search.validate().is_err());
        let mut bad_version = ok;
        bad_version.schema_version = 2;
        assert_eq!(
            bad_version.validate().unwrap_err(),
            SpecError::UnsupportedVersion(2)
        );
    }

    #[test]
    fn inline_model_encoding_preserves_every_cost_number() {
        let model = zoo::cdm_lsun();
        let v = model_to_json(&model);
        let back = model_from_json(&v, "model").unwrap();
        assert_eq!(back, model);
        assert_eq!(back.fingerprint(), model.fingerprint());
        // Through text, too.
        let back = model_from_json(&parse(&v.to_string()).unwrap(), "model").unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn cluster_encoding_preserves_classes_and_links() {
        for cluster in [
            ClusterSpec::single_node(4),
            ClusterSpec::p4de(8),
            mixed_cluster(),
            ClusterSpec::mixed(&[(DeviceClass::a10g(), 3)]),
        ] {
            let v = cluster_to_json(&cluster);
            let back = cluster_from_json(&parse(&v.to_string()).unwrap(), "cluster").unwrap();
            assert_eq!(back, cluster);
            assert_eq!(back.fingerprint(), cluster.fingerprint());
        }
    }

    #[test]
    fn labels_are_readable() {
        let spec = PlanSpec::zoo("dit", ClusterSpec::single_node(4), 64);
        assert_eq!(spec.label(), "dit@4gpu/b64");
        assert_eq!(spec.model.name(), "dit");
        assert_eq!(
            PlanSpec::new(zoo::dit_xl_2(), ClusterSpec::single_node(4), 64)
                .model
                .name(),
            "dit-xl-2"
        );
    }
}
