//! The declarative planning API: one versioned, JSON-round-trippable spec
//! that every entry point consumes.
//!
//! Before this crate, the same planning inputs were spelled four different
//! ways — `Planner::with_*` builder knobs, `PlanRequest::with_*`
//! duplicates in the serving layer, ad-hoc sweep axes and hand-parsed CLI
//! flags — and the JSON module could emit but not parse, so no scenario
//! was expressible as data. [`PlanSpec`] collapses all of them into a
//! single value:
//!
//! * **model** — a zoo name or a complete inline [`dpipe_model::ModelSpec`]
//!   ([`ModelRef`]);
//! * **cluster** — shape, links, and the per-machine [`DeviceClass`]
//!   assignments of mixed-GPU fleets;
//! * **knobs** — global batch, [`PlannerOptions`], search space, fill
//!   config, schedule family, parallelism, record-backed-profile mode.
//!
//! [`PlanSpec::to_json`] / [`PlanSpec::from_json`] round-trip the spec
//! byte-stably (`spec -> json -> spec` is identity and re-encoding is
//! byte-identical), [`PlanSpec::validate`] produces typed [`SpecError`]
//! diagnostics, and [`PlanSpec::fingerprint`] is the serve-layer cache key
//! — bit-compatible with every fingerprint minted before this API existed.
//! [`SweepSpec`] lifts the same idea to sweeps: a template spec plus axes
//! (models × clusters × batches, with `"a100:4,h100:4"` mixed fleets as
//! first-class axis points).
//!
//! The [`json`] module is the crate's foundation: a dependency-free JSON
//! tree with an emitter *and* a hand-written parser (the workspace `serde`
//! is an inert offline shim), re-homed here from `dpipe_serve` so the core
//! planner can consume specs without a dependency cycle.
//!
//! # Example
//!
//! ```
//! use dpipe_spec::{PlanSpec, SCHEMA_VERSION};
//! use dpipe_cluster::ClusterSpec;
//!
//! let spec = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 256);
//! let text = spec.to_json();
//! let back = PlanSpec::from_json(&text).unwrap();
//! assert_eq!(back, spec);
//! assert_eq!(back.schema_version, SCHEMA_VERSION);
//! assert_eq!(back.fingerprint().unwrap(), spec.fingerprint().unwrap());
//! ```
//!
//! [`DeviceClass`]: dpipe_cluster::DeviceClass

pub mod decode;
pub mod json;

mod error;
mod options;
mod plan_spec;
mod sweep_spec;

pub use error::SpecError;
pub use options::PlannerOptions;
pub use plan_spec::{
    cluster_from_json, cluster_to_json, model_from_json, model_ref_from_json, model_ref_to_json,
    model_to_json, schedule_str, ModelRef, PlanSpec,
};
pub use sweep_spec::{cluster_for_gpus, cluster_label, ClusterAxis, SweepSpec};

/// The schema version this build reads and writes. Documents carrying any
/// other version are rejected with [`SpecError::UnsupportedVersion`];
/// additive, default-carrying fields do *not* bump this, renames and
/// semantic changes do.
pub const SCHEMA_VERSION: u32 = 1;
