//! [`SweepSpec`]: a declarative sweep — one template [`PlanSpec`] plus the
//! axes that vary, expanding to concrete specs.

use crate::decode::{self, Fields};
use crate::error::SpecError;
use crate::json::{parse, JsonValue};
use crate::plan_spec::{cluster_from_json, cluster_to_json, model_ref_to_json, ModelRef, PlanSpec};
use crate::SCHEMA_VERSION;
use dpipe_cluster::{ClusterSpec, DeviceClass};

/// One point of a sweep's cluster axis.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterAxis {
    /// A total GPU count, resolved through [`cluster_for_gpus`]: `p4de`
    /// nodes for multiples of 8 above 8, one wide machine otherwise.
    GpuCount(usize),
    /// A mixed-fleet machine spec like `a100:4,h100:4` (8-GPU nodes, one
    /// class per machine) — the heterogeneous fleets of
    /// [`ClusterSpec::mixed`] as a sweep axis.
    MachineClasses(String),
    /// An explicit cluster (anything the other two shorthands cannot say).
    Cluster(ClusterSpec),
}

impl ClusterAxis {
    /// Resolves the axis point to a concrete cluster.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownClass`] / [`SpecError::InvalidValue`] for a bad
    /// machine spec.
    pub fn resolve(&self) -> Result<ClusterSpec, SpecError> {
        match self {
            ClusterAxis::GpuCount(gpus) => Ok(cluster_for_gpus(*gpus)),
            ClusterAxis::MachineClasses(spec) => {
                let classes = DeviceClass::parse_machine_spec(spec).map_err(|e| {
                    if e.starts_with("unknown device class") {
                        SpecError::UnknownClass(e.split('`').nth(1).unwrap_or("?").to_owned())
                    } else {
                        SpecError::invalid("clusters", e)
                    }
                })?;
                Ok(ClusterSpec {
                    machine_classes: classes.clone(),
                    ..ClusterSpec::p4de(classes.len())
                })
            }
            ClusterAxis::Cluster(cluster) => Ok(cluster.clone()),
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            ClusterAxis::GpuCount(gpus) => JsonValue::UInt(*gpus as u64),
            ClusterAxis::MachineClasses(spec) => JsonValue::Str(spec.clone()),
            ClusterAxis::Cluster(cluster) => cluster_to_json(cluster),
        }
    }

    fn from_json(v: &JsonValue, path: &str) -> Result<Self, SpecError> {
        match v {
            JsonValue::UInt(_) => Ok(ClusterAxis::GpuCount(decode::as_usize(v, path)?)),
            JsonValue::Str(spec) => Ok(ClusterAxis::MachineClasses(spec.clone())),
            JsonValue::Object(_) => Ok(ClusterAxis::Cluster(cluster_from_json(v, path)?)),
            other => Err(SpecError::invalid(
                path,
                format!(
                    "expected a GPU count, a machine spec string or a cluster object, found {}",
                    other.type_name()
                ),
            )),
        }
    }
}

/// The cluster shape used for a bare GPU count: `p4de(n/8)` for multiples
/// of 8 above 8, otherwise one machine with that many devices.
pub fn cluster_for_gpus(gpus: usize) -> ClusterSpec {
    if gpus > 8 && gpus.is_multiple_of(8) {
        ClusterSpec::p4de(gpus / 8)
    } else {
        ClusterSpec::single_node(gpus)
    }
}

/// A run-length label for a cluster: `8gpu` when homogeneous, the
/// `a100:4,h100:4` class spec when mixed. Used for sweep coordinates and
/// report rows.
pub fn cluster_label(cluster: &ClusterSpec) -> String {
    if !cluster.is_heterogeneous() {
        return format!("{}gpu", cluster.world_size());
    }
    let mut runs: Vec<(String, usize)> = Vec::new();
    for class in &cluster.machine_classes {
        match runs.last_mut() {
            Some((name, count)) if *name == class.name => *count += 1,
            _ => runs.push((class.name.clone(), 1)),
        }
    }
    runs.iter()
        .map(|(name, count)| format!("{name}:{count}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// A declarative sweep: a template spec plus the axes that vary.
///
/// Expansion is a cartesian product in deterministic model-major /
/// cluster / batch-minor order; every expanded point is the template with
/// the axis values substituted, so options, search bounds, fill config,
/// schedule and profiling mode apply uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Schema version of the serialized form (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Everything the axes do not override.
    pub template: PlanSpec,
    /// Model axis.
    pub models: Vec<ModelRef>,
    /// Cluster axis.
    pub clusters: Vec<ClusterAxis>,
    /// Global-batch axis.
    pub batches: Vec<u32>,
}

impl SweepSpec {
    /// A one-point sweep: every axis is the template's own value.
    pub fn new(template: PlanSpec) -> Self {
        SweepSpec {
            schema_version: SCHEMA_VERSION,
            models: vec![template.model.clone()],
            clusters: vec![ClusterAxis::Cluster(template.cluster.clone())],
            batches: vec![template.global_batch],
            template,
        }
    }

    /// Replaces the model axis.
    pub fn with_models(mut self, models: Vec<ModelRef>) -> Self {
        self.models = models;
        self
    }

    /// Replaces the cluster axis.
    pub fn with_clusters(mut self, clusters: Vec<ClusterAxis>) -> Self {
        self.clusters = clusters;
        self
    }

    /// Replaces the batch axis.
    pub fn with_batches(mut self, batches: Vec<u32>) -> Self {
        self.batches = batches;
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.models.len() * self.clusters.len() * self.batches.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the axes into concrete specs (model-major, then cluster,
    /// then batch).
    ///
    /// # Errors
    ///
    /// The first axis point that fails to resolve (bad machine spec).
    /// Unknown *zoo names* resolve lazily at plan time, like everywhere
    /// else.
    pub fn specs(&self) -> Result<Vec<PlanSpec>, SpecError> {
        let clusters: Vec<ClusterSpec> = self
            .clusters
            .iter()
            .map(ClusterAxis::resolve)
            .collect::<Result<_, _>>()?;
        let mut out = Vec::with_capacity(self.len());
        for model in &self.models {
            for cluster in &clusters {
                for &batch in &self.batches {
                    let mut spec = self.template.clone();
                    spec.model = model.clone();
                    spec.cluster = cluster.clone();
                    spec.global_batch = batch;
                    out.push(spec);
                }
            }
        }
        Ok(out)
    }

    /// The canonical JSON tree (axes explicit, template complete).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".to_owned(),
                JsonValue::UInt(u64::from(self.schema_version)),
            ),
            ("template".to_owned(), self.template.to_json_value()),
            (
                "models".to_owned(),
                JsonValue::Array(
                    self.models
                        .iter()
                        .map(|m| match m {
                            // Zoo refs stay compact strings on the axis.
                            ModelRef::Zoo(name) => JsonValue::Str(name.clone()),
                            inline => model_ref_to_json(inline),
                        })
                        .collect(),
                ),
            ),
            (
                "clusters".to_owned(),
                JsonValue::Array(self.clusters.iter().map(ClusterAxis::to_json).collect()),
            ),
            (
                "batches".to_owned(),
                JsonValue::Array(
                    self.batches
                        .iter()
                        .map(|&b| JsonValue::UInt(u64::from(b)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The canonical JSON encoding as a string (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parses a sweep spec. `template` is required; absent axes default to
    /// the template's own model/cluster/batch (a one-point axis).
    ///
    /// # Errors
    ///
    /// See [`PlanSpec::from_json`].
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_json_value(&parse(text)?)
    }

    /// [`SweepSpec::from_json`] over an already-parsed tree.
    ///
    /// # Errors
    ///
    /// See [`PlanSpec::from_json`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, SpecError> {
        let fields = Fields::new(value, "")?;
        fields.allow(&[
            "schema_version",
            "template",
            "models",
            "clusters",
            "batches",
        ])?;
        let version = decode::u64_field(&fields, "schema_version")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(SpecError::UnsupportedVersion(version));
        }
        let template =
            PlanSpec::from_json_value(fields.require("template")?).map_err(|e| match e {
                // Re-root nested paths under `template.`.
                SpecError::MissingField(f) => SpecError::MissingField(format!("template.{f}")),
                SpecError::UnknownField(f) => SpecError::UnknownField(format!("template.{f}")),
                SpecError::InvalidValue { field, reason } => SpecError::InvalidValue {
                    field: format!("template.{field}"),
                    reason,
                },
                other => other,
            })?;
        let models = match fields.get("models") {
            Some(v) => decode::as_array(v, "models")?
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    if let Some(name) = m.as_str() {
                        Ok(ModelRef::Zoo(name.to_owned()))
                    } else {
                        crate::plan_spec::model_ref_from_json(m, &format!("models[{i}]"))
                    }
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![template.model.clone()],
        };
        let clusters = match fields.get("clusters") {
            Some(v) => decode::as_array(v, "clusters")?
                .iter()
                .enumerate()
                .map(|(i, c)| ClusterAxis::from_json(c, &format!("clusters[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![ClusterAxis::Cluster(template.cluster.clone())],
        };
        let batches = match fields.get("batches") {
            Some(v) => decode::as_array(v, "batches")?
                .iter()
                .enumerate()
                .map(|(i, b)| decode::as_u32(b, &format!("batches[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![template.global_batch],
        };
        Ok(SweepSpec {
            schema_version: SCHEMA_VERSION,
            template,
            models,
            clusters,
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::DeviceClass;

    fn template() -> PlanSpec {
        PlanSpec::zoo("sd", ClusterSpec::single_node(8), 64)
    }

    #[test]
    fn cluster_for_gpus_picks_shapes() {
        assert_eq!(cluster_for_gpus(4).world_size(), 4);
        assert_eq!(cluster_for_gpus(4).machines, 1);
        let multi = cluster_for_gpus(16);
        assert_eq!((multi.machines, multi.world_size()), (2, 16));
        // 12 is not a multiple of 8: one wide machine.
        assert_eq!(cluster_for_gpus(12).machines, 1);
    }

    #[test]
    fn mixed_axis_resolves_to_a_heterogeneous_fleet() {
        let axis = ClusterAxis::MachineClasses("a100:2,h100:2".to_owned());
        let cluster = axis.resolve().unwrap();
        assert_eq!(
            cluster,
            ClusterSpec::mixed(&[(DeviceClass::a100(), 2), (DeviceClass::h100(), 2)])
        );
        assert_eq!(cluster_label(&cluster), "a100:2,h100:2");
        assert_eq!(cluster_label(&cluster_for_gpus(16)), "16gpu");
        assert_eq!(
            ClusterAxis::MachineClasses("v100:2".to_owned())
                .resolve()
                .unwrap_err(),
            SpecError::UnknownClass("v100".to_owned())
        );
    }

    #[test]
    fn expansion_is_cartesian_and_template_knobs_apply_everywhere() {
        let mut t = template();
        t.record_backed = true;
        let sweep = SweepSpec::new(t)
            .with_models(vec![
                ModelRef::Zoo("sd".to_owned()),
                ModelRef::Zoo("dit".to_owned()),
            ])
            .with_clusters(vec![
                ClusterAxis::GpuCount(8),
                ClusterAxis::MachineClasses("a100:1,h100:1".to_owned()),
            ])
            .with_batches(vec![64, 128]);
        assert_eq!(sweep.len(), 8);
        let specs = sweep.specs().unwrap();
        assert_eq!(specs.len(), 8);
        assert!(specs.iter().all(|s| s.record_backed));
        assert_eq!(specs[0].model.name(), "sd");
        assert_eq!(specs[7].model.name(), "dit");
        assert_eq!(specs[0].global_batch, 64);
        assert_eq!(specs[1].global_batch, 128);
        assert!(specs[2].cluster.is_heterogeneous());
    }

    #[test]
    fn json_round_trip_including_mixed_axis() {
        let sweep = SweepSpec::new(template())
            .with_models(vec![ModelRef::Zoo("sd".to_owned())])
            .with_clusters(vec![
                ClusterAxis::GpuCount(16),
                ClusterAxis::MachineClasses("a100:2,h100:2".to_owned()),
                ClusterAxis::Cluster(ClusterSpec::single_node(3)),
            ])
            .with_batches(vec![256]);
        let text = sweep.to_json();
        let back = SweepSpec::from_json(&text).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn absent_axes_default_to_the_template() {
        let text = format!(
            r#"{{"schema_version":1,"template":{}}}"#,
            template().to_json()
        );
        let sweep = SweepSpec::from_json(&text).unwrap();
        assert_eq!(sweep.len(), 1);
        let specs = sweep.specs().unwrap();
        assert_eq!(specs, vec![template()]);
        // And the defaulted form re-encodes canonically (axes explicit).
        assert_eq!(SweepSpec::from_json(&sweep.to_json()).unwrap(), sweep);
    }

    #[test]
    fn template_errors_are_re_rooted() {
        let err = SweepSpec::from_json(
            r#"{"schema_version":1,"template":{"schema_version":1,"model":"sd","cluster":{}}}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::MissingField("template.global_batch".to_owned())
        );
        let err = SweepSpec::from_json(r#"{"schema_version":7,"template":{}}"#).unwrap_err();
        assert_eq!(err, SpecError::UnsupportedVersion(7));
    }
}
