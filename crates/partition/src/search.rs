//! Hyper-parameter enumeration: the (S, M, D) combinations of Table 3.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use serde::{Deserialize, Serialize};

/// One hyper-parameter combination of the paper's Table 3: stage count `S`,
/// micro-batch count `M` and pipeline-parallel group size `D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HyperParams {
    /// Number of model stages.
    pub num_stages: usize,
    /// Number of micro-batches.
    pub num_micro_batches: usize,
    /// Pipeline-parallel group size.
    pub group_size: usize,
}

impl HyperParams {
    /// The batch one pipeline group handles for a given global batch on a
    /// cluster of `world` devices.
    pub fn group_batch(&self, global_batch: u32, world: usize) -> f64 {
        global_batch as f64 * self.group_size as f64 / world as f64
    }
}

/// Bounds for the hyper-parameter search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Maximum stage count to consider.
    pub max_stages: usize,
    /// Maximum micro-batch count to consider.
    pub max_micro_batches: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            max_stages: 8,
            max_micro_batches: 8,
        }
    }
}

/// Why a hyper-parameter search space produced no configurations.
///
/// Rendered messages are suitable for wrapping into a serving-layer
/// "invalid request" error (e.g. `PlanError::InvalidRequest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchSpaceError {
    /// `SearchSpace::max_stages` is zero.
    ZeroStages,
    /// `SearchSpace::max_micro_batches` is zero.
    ZeroMicroBatches,
    /// The bounds are non-degenerate but no (S, M, D) combination satisfies
    /// the feasibility rules (e.g. the global batch is smaller than the
    /// data-parallel degree of every layout).
    NoFeasibleConfig {
        /// World size of the cluster searched.
        world: usize,
        /// Global batch requested.
        global_batch: u32,
    },
}

impl std::fmt::Display for SearchSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchSpaceError::ZeroStages => {
                f.write_str("search space allows zero stages (max_stages == 0)")
            }
            SearchSpaceError::ZeroMicroBatches => {
                f.write_str("search space allows zero micro-batches (max_micro_batches == 0)")
            }
            SearchSpaceError::NoFeasibleConfig {
                world,
                global_batch,
            } => write!(
                f,
                "no feasible (S, M, D) configuration for batch {global_batch} \
                 on {world} devices"
            ),
        }
    }
}

impl std::error::Error for SearchSpaceError {}

/// Enumerates every feasible (S, M, D):
///
/// * `D` divides the world size (data parallelism uses the rest);
/// * `S` divides `D` (uniform stage replication, the paper's evaluation
///   setting) and `S ≤ min(max_stages, backbone layer count)`;
/// * each stage replica sees at least one sample per micro-batch:
///   `B_group / M / (D/S) ≥ 1`.
///
/// # Errors
///
/// Returns a [`SearchSpaceError`] when the bounds are degenerate
/// (`max_stages == 0` or `max_micro_batches == 0`) or when no combination
/// is feasible — callers must not silently plan over an empty space.
pub fn enumerate_configs(
    cluster: &ClusterSpec,
    global_batch: u32,
    backbone_layers: usize,
    space: &SearchSpace,
) -> Result<Vec<HyperParams>, SearchSpaceError> {
    if space.max_stages == 0 {
        return Err(SearchSpaceError::ZeroStages);
    }
    if space.max_micro_batches == 0 {
        return Err(SearchSpaceError::ZeroMicroBatches);
    }
    let world = cluster.world_size();
    let mut out = Vec::new();
    for d in DataParallelLayout::candidate_group_sizes(cluster) {
        let group_batch = global_batch as f64 * d as f64 / world as f64;
        if group_batch < 1.0 {
            continue;
        }
        for s in 1..=space.max_stages.min(backbone_layers).min(d) {
            if d % s != 0 {
                continue;
            }
            let r = d / s;
            for m in 1..=space.max_micro_batches {
                let local = group_batch / m as f64 / r as f64;
                if local < 1.0 {
                    continue;
                }
                out.push(HyperParams {
                    num_stages: s,
                    num_micro_batches: m,
                    group_size: d,
                });
            }
        }
    }
    if out.is_empty() {
        return Err(SearchSpaceError::NoFeasibleConfig {
            world,
            global_batch,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_satisfy_divisibility() {
        let cluster = ClusterSpec::p4de(2); // 16 devices
        let configs = enumerate_configs(&cluster, 256, 28, &SearchSpace::default()).unwrap();
        assert!(!configs.is_empty());
        for c in &configs {
            assert_eq!(16 % c.group_size, 0);
            assert_eq!(c.group_size % c.num_stages, 0);
            let local = c.group_batch(256, 16)
                / c.num_micro_batches as f64
                / (c.group_size / c.num_stages) as f64;
            assert!(local >= 1.0);
        }
    }

    #[test]
    fn pure_data_parallel_is_included() {
        let cluster = ClusterSpec::single_node(8);
        let configs = enumerate_configs(&cluster, 64, 28, &SearchSpace::default()).unwrap();
        assert!(configs
            .iter()
            .any(|c| c.group_size == 1 && c.num_stages == 1));
    }

    #[test]
    fn stage_count_capped_by_layers() {
        let cluster = ClusterSpec::single_node(8);
        let configs = enumerate_configs(&cluster, 64, 2, &SearchSpace::default()).unwrap();
        assert!(configs.iter().all(|c| c.num_stages <= 2));
    }

    #[test]
    fn degenerate_bounds_are_rejected() {
        let cluster = ClusterSpec::single_node(8);
        let zero_stages = SearchSpace {
            max_stages: 0,
            ..SearchSpace::default()
        };
        assert_eq!(
            enumerate_configs(&cluster, 64, 28, &zero_stages),
            Err(SearchSpaceError::ZeroStages)
        );
        let zero_micro = SearchSpace {
            max_micro_batches: 0,
            ..SearchSpace::default()
        };
        assert_eq!(
            enumerate_configs(&cluster, 64, 28, &zero_micro),
            Err(SearchSpaceError::ZeroMicroBatches)
        );
        assert!(SearchSpaceError::ZeroStages.to_string().contains("stages"));
    }

    #[test]
    fn infeasible_space_is_an_error_not_empty() {
        // Batch 0 admits no configuration at all.
        let cluster = ClusterSpec::single_node(8);
        let err = enumerate_configs(&cluster, 0, 28, &SearchSpace::default()).unwrap_err();
        assert_eq!(
            err,
            SearchSpaceError::NoFeasibleConfig {
                world: 8,
                global_batch: 0
            }
        );
        assert!(err.to_string().contains("no feasible"));
    }

    #[test]
    fn tiny_batch_prunes_micro_batches() {
        let cluster = ClusterSpec::single_node(8);
        let configs = enumerate_configs(&cluster, 8, 28, &SearchSpace::default()).unwrap();
        for c in &configs {
            let local = c.group_batch(8, 8)
                / c.num_micro_batches as f64
                / (c.group_size / c.num_stages) as f64;
            assert!(local >= 1.0);
        }
    }

    #[test]
    fn group_batch_scales_with_group_size() {
        let h = HyperParams {
            num_stages: 2,
            num_micro_batches: 2,
            group_size: 4,
        };
        assert_eq!(h.group_batch(64, 8), 32.0);
    }
}
