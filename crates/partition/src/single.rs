//! Single-backbone partitioning DP (paper §4.1, Eqns. 2–9).
//!
//! This is the allocation-free fast path: states live on a flat
//! `(layers_used, devices_used)` grid per level, Pareto fronts are
//! contiguous spans in a per-level arena ([`crate::dp`]), and every cost
//! query is answered in O(1) from a [`CostPrefix`]. A branch-and-bound
//! upper bound — seeded by an even-split heuristic solution and tightened
//! as complete solutions appear — discards candidates that provably cannot
//! win. The output is bit-identical to the naive reference implementation
//! in [`crate::reference`]; see the crate docs for the layout and the
//! equivalence argument.

use crate::config::PartitionConfig;
use crate::dp::{DpStats, FrontArena};
use crate::error::PartitionError;
use crate::plan::{PartitionPlan, StagePlan};
use crate::stage_cost::{StageCost, SyncShape};
use dpipe_cluster::{ClusterSpec, DataParallelLayout, LinkParams};
use dpipe_model::ComponentId;
use dpipe_profile::{BatchCosts, CostPrefix, ProfileDb};

/// The unified backbone partitioner.
///
/// Holds references to the profile database, cluster topology and
/// data/pipeline layout; see the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Partitioner<'a> {
    cost: StageCost<'a>,
}

impl<'a> Partitioner<'a> {
    /// Creates a partitioner.
    pub fn new(
        db: &'a ProfileDb,
        cluster: &'a ClusterSpec,
        layout: &'a DataParallelLayout,
    ) -> Self {
        Partitioner {
            cost: StageCost::new(db, cluster, layout),
        }
    }

    /// Supplies one [`ProfileDb`] per distinct device class of the cluster
    /// (class order of [`ClusterSpec::class_map`]); stage costs are then
    /// looked up against the class of the devices each stage lands on. See
    /// [`StageCost::with_class_dbs`].
    pub fn with_class_dbs(mut self, class_dbs: &'a [ProfileDb]) -> Self {
        self.cost = self.cost.with_class_dbs(class_dbs);
        self
    }

    /// The stage-cost evaluator (exposed for baselines that reuse the cost
    /// terms, e.g. SPP).
    pub fn cost(&self) -> &StageCost<'a> {
        &self.cost
    }

    pub(crate) fn self_cond_prob(&self) -> f64 {
        self.cost
            .db()
            .model()
            .self_conditioning
            .map_or(0.0, |sc| sc.probability)
    }

    /// Validates a request, returning `(L, D)`.
    pub(crate) fn validate(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<(usize, usize), PartitionError> {
        let model = self.cost.db().model();
        let comp = model
            .components
            .get(backbone.index())
            .ok_or(PartitionError::NotABackbone(backbone.index()))?;
        if !comp.is_trainable() {
            return Err(PartitionError::NotABackbone(backbone.index()));
        }
        let layers = comp.num_layers();
        let devices = self.cost.layout().group_size;
        if cfg.num_micro_batches == 0 || cfg.group_batch <= 0.0 || cfg.num_stages == 0 {
            return Err(PartitionError::DegenerateConfig);
        }
        if cfg.num_stages > layers {
            return Err(PartitionError::TooManyStages {
                stages: cfg.num_stages,
                layers,
            });
        }
        if cfg.num_stages > devices {
            return Err(PartitionError::TooFewDevices {
                stages: cfg.num_stages,
                devices,
            });
        }
        if cfg.force_uniform && !devices.is_multiple_of(cfg.num_stages) {
            return Err(PartitionError::NonUniformGroup {
                stages: cfg.num_stages,
                devices,
            });
        }
        Ok((layers, devices))
    }

    /// Builds one [`CostPrefix`] per device class covering every local
    /// batch this config's DP can query: `micro / r` for the single uniform
    /// replication, or for every feasible `r` when non-uniform replication
    /// is allowed. Callers of [`Partitioner::partition_single_with`] can
    /// build one set per backbone and reuse it across configurations that
    /// share batch rows. Homogeneous clusters get a single-element vector.
    pub fn build_prefixes(&self, backbone: ComponentId, cfg: &PartitionConfig) -> Vec<CostPrefix> {
        let micro = cfg.micro_batch();
        let devices = self.cost.layout().group_size;
        (0..self.cost.num_classes())
            .map(|class| {
                let db = self.cost.db_for(class);
                let mut prefix = CostPrefix::new(db, backbone);
                if cfg.force_uniform {
                    let r = devices / cfg.num_stages.max(1);
                    if r > 0 {
                        prefix.ensure_batch(db, micro / r as f64);
                    }
                } else {
                    let max_r = devices.saturating_sub(cfg.num_stages.saturating_sub(1));
                    for r in 1..=max_r {
                        prefix.ensure_batch(db, micro / r as f64);
                    }
                }
                prefix
            })
            .collect()
    }

    /// Optimally partitions `backbone` into `cfg.num_stages` stages over the
    /// pipeline group, minimising the Eqn. (1) upper bound (with the
    /// self-conditioning expectation of §4.3 when the model enables it).
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_single(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<PartitionPlan, PartitionError> {
        self.validate(backbone, cfg)?;
        let prefixes = self.build_prefixes(backbone, cfg);
        let mut stats = DpStats::default();
        self.partition_single_with(backbone, cfg, &prefixes, &mut stats)
    }

    /// [`Partitioner::partition_single`] against caller-supplied per-class
    /// [`CostPrefix`] tables (shared across the configs of one planning
    /// call; index = device-class index, one element on homogeneous
    /// clusters), accumulating DP counters into `stats`.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    ///
    /// # Panics
    ///
    /// Panics if a prefix lacks a row for a local batch the DP queries; use
    /// [`CostPrefix::ensure_batch`] (or go through
    /// [`Partitioner::partition_single`], which prepares its own tables).
    pub fn partition_single_with(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
        prefixes: &[CostPrefix],
        stats: &mut DpStats,
    ) -> Result<PartitionPlan, PartitionError> {
        let (num_layers, num_devices) = self.validate(backbone, cfg)?;
        if prefixes.is_empty() {
            return Err(PartitionError::NoCostTables);
        }
        let s_total = cfg.num_stages;
        let micro = cfg.micro_batch();
        let sc_prob = self.self_cond_prob();
        let coeff = cfg.critical_path_factor();

        // Per-offset input links, per-(class, replication) resolved cost
        // views, and lazily-filled sync shapes + effective classes for every
        // contiguous device range, so the inner loop never rebuilds (or
        // re-looks-up) any of them.
        let links: Vec<Option<LinkParams>> =
            (0..num_devices).map(|o| self.cost.input_link(o)).collect();
        let num_classes = self.cost.num_classes().min(prefixes.len()).max(1);
        let mut views: Vec<Vec<Option<BatchCosts<'_>>>> =
            vec![vec![None; num_devices + 1]; num_classes];
        for (class, class_views) in views.iter_mut().enumerate() {
            let prefix = &prefixes[class.min(prefixes.len() - 1)];
            if cfg.force_uniform {
                let r = num_devices / s_total;
                class_views[r] = Some(prefix.batch_view(micro / r as f64));
            } else {
                let max_r = num_devices - (s_total - 1);
                for (r, view) in class_views.iter_mut().enumerate().take(max_r + 1).skip(1) {
                    *view = Some(prefix.batch_view(micro / r as f64));
                }
            }
        }
        let view_for = |class: usize, r: usize| -> &BatchCosts<'_> {
            views[class.min(num_classes - 1)][r]
                .as_ref()
                // dpipe-analyze: allow(no-panic) -- the loop above fills a view for every replication reachable through max_r
                .expect("replication view present")
        };
        let mut shapes: Vec<Option<(SyncShape, usize)>> =
            vec![None; (num_devices + 1) * (num_devices + 1)];
        let mut shape_for = |cost: &StageCost<'a>, d: usize, d2: usize| -> (SyncShape, usize) {
            let idx = d * (num_devices + 1) + d2;
            *shapes[idx]
                .get_or_insert_with(|| (cost.sync_shape(d..d2), cost.class_of_offsets(d..d2)))
        };

        // Branch-and-bound seed: the even layer/device split is a complete
        // feasible solution, so `coeff * W + Y` of any winning candidate
        // can never exceed its cost.
        let mut bound = f64::INFINITY;
        {
            let mut w_h = 0.0f64;
            let mut y_h = 0.0f64;
            for k in 1..=s_total {
                let (l, l2) = ((k - 1) * num_layers / s_total, k * num_layers / s_total);
                let (d, d2) = ((k - 1) * num_devices / s_total, k * num_devices / s_total);
                let (shape, class) = shape_for(&self.cost, d, d2);
                let terms = self.cost.stage_terms_prefixed(
                    view_for(class, d2 - d),
                    l..l2,
                    links[d],
                    sc_prob,
                    1.0,
                    shape,
                );
                w_h = w_h.max(terms.t0);
                y_h = y_h.max(terms.sync_gap);
            }
            bound = bound.min(coeff * w_h + y_h);
        }

        // DP over (layers_used, devices_used) states, dest-major so each
        // front is a contiguous arena span. Candidates for one destination
        // arrive in (prev_l, prev_d, point) order — the canonical order the
        // reference implementation replicates.
        let state = |l: usize, d: usize| l * (num_devices + 1) + d;
        let num_states = (num_layers + 1) * (num_devices + 1);
        let mut levels: Vec<FrontArena> = Vec::with_capacity(s_total + 1);
        let mut seed = FrontArena::new(num_states);
        let seg = seed.begin_state();
        seed.insert(seg, 0.0, 0.0, 0, 0);
        seed.end_state(state(0, 0), seg);
        levels.push(seed);

        let uniform_r = num_devices / s_total;
        let final_state = state(num_layers, num_devices);
        for s in 1..=s_total {
            let stages_left = s_total - s;
            let mut cur = FrontArena::new(num_states);
            let prev = &levels[s - 1];
            for l2 in s..=(num_layers - stages_left) {
                // Destination device counts: forced to s * r when uniform,
                // otherwise anything leaving >= 1 device per later stage
                // (and exactly `num_devices` for the last stage).
                let d2_range = if cfg.force_uniform {
                    (s * uniform_r)..=(s * uniform_r)
                } else if stages_left > 0 {
                    s..=(num_devices - stages_left)
                } else {
                    num_devices..=num_devices
                };
                for d2 in d2_range {
                    let dest = state(l2, d2);
                    let seg = cur.begin_state();
                    let l_min = s - 1;
                    let d_lo = if cfg.force_uniform {
                        (s - 1) * uniform_r
                    } else {
                        s - 1
                    };
                    let d_hi = if cfg.force_uniform {
                        (s - 1) * uniform_r
                    } else {
                        d2 - 1
                    };
                    for l in l_min..l2 {
                        // `d` is a state coordinate (also the replication
                        // delta and link index), not a mere slice cursor.
                        #[allow(clippy::needless_range_loop)]
                        for d in d_lo..=d_hi {
                            let front = prev.front(state(l, d));
                            if front.is_empty() {
                                continue;
                            }
                            let r = d2 - d;
                            let (shape, class) = shape_for(&self.cost, d, d2);
                            let terms = self.cost.stage_terms_prefixed(
                                view_for(class, r),
                                l..l2,
                                links[d],
                                sc_prob,
                                1.0,
                                shape,
                            );
                            for (pi, p) in front.iter().enumerate() {
                                stats.candidates += 1;
                                let nw = p.w.max(terms.t0);
                                let ny = p.y.max(terms.sync_gap);
                                let cost = coeff * nw + ny;
                                if cost > bound {
                                    stats.pruned += 1;
                                    continue;
                                }
                                if dest == final_state && s == s_total {
                                    bound = bound.min(cost);
                                }
                                cur.insert(seg, nw, ny, state(l, d) as u32, pi as u32);
                            }
                        }
                    }
                    cur.end_state(dest, seg);
                }
            }
            levels.push(cur);
        }

        let best_idx =
            levels[s_total]
                .best(final_state, coeff)
                .ok_or(PartitionError::TooManyStages {
                    stages: s_total,
                    layers: num_layers,
                })?;
        let best_point = levels[s_total].front(final_state)[best_idx];
        let (w, y) = (best_point.w, best_point.y);

        // Parent-pointer backtrack: each stage's layer range, replication
        // and device offsets are recovered from the state-index deltas.
        let mut stages_rev: Vec<StagePlan> = Vec::with_capacity(s_total);
        let mut cur_state = final_state;
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let p = levels[s].front(cur_state)[point];
            let (l2, d2) = (cur_state / (num_devices + 1), cur_state % (num_devices + 1));
            let prev_state = p.prev_state as usize;
            let (l, d) = (
                prev_state / (num_devices + 1),
                prev_state % (num_devices + 1),
            );
            stages_rev.push(StagePlan {
                component: backbone,
                layers: l..l2,
                replication: d2 - d,
                device_offsets: (d..d2).collect(),
            });
            cur_state = prev_state;
            point = p.prev_point as usize;
        }
        stages_rev.reverse();

        // dpipe-analyze: allow(no-panic) -- the backtrack loop pushes one stage per s in 1..=s_total, and s_total >= 1
        let r_last = stages_rev.last().expect("at least one stage").replication;
        let feedback = if sc_prob > 0.0 {
            sc_prob * self.cost.feedback_time(backbone, micro / r_last as f64)
        } else {
            0.0
        };
        let t_max = coeff * w + y + feedback;
        Ok(PartitionPlan {
            stages: stages_rev,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    struct Fixture {
        db: ProfileDb,
        cluster: ClusterSpec,
    }

    fn fixture(model: dpipe_model::ModelSpec, devices: usize, batch: u32) -> Fixture {
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        Fixture {
            db,
            cluster: ClusterSpec::single_node(devices),
        }
    }

    fn backbone(db: &ProfileDb) -> ComponentId {
        db.model().backbones().next().unwrap().0
    }

    #[test]
    fn partition_covers_all_layers() {
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        for s in [1usize, 2, 4, 8] {
            let plan = p
                .partition_single(backbone(&f.db), &PartitionConfig::new(s, 4, 64.0))
                .unwrap();
            assert_eq!(plan.num_stages(), s);
            assert!(plan.covers(28), "stages {:?}", plan.stages);
            assert_eq!(plan.devices_used(), 8);
        }
    }

    #[test]
    fn uniform_partition_balances_stage_times() {
        // With uniform per-layer costs, the DP should produce near-equal
        // stage compute times.
        let model = zoo::synthetic_model(12, 10.0, &[1.0], false);
        let f = fixture(model, 4, 16);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(backbone(&f.db), &PartitionConfig::new(4, 4, 16.0))
            .unwrap();
        let sizes: Vec<usize> = plan.stages.iter().map(|s| s.num_layers()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 3]);
    }

    #[test]
    fn skewed_model_gets_skewed_partition() {
        // First layers 4x heavier: the first stage should hold fewer layers.
        let mut model = zoo::synthetic_model(12, 10.0, &[1.0], false);
        {
            let bb = model
                .components
                .iter_mut()
                .find(|c| c.is_trainable())
                .unwrap();
            for l in bb.layers.iter_mut().take(4) {
                l.flops_per_sample *= 4.0;
            }
        }
        let f = fixture(model, 2, 16);
        let layout = DataParallelLayout::new(&f.cluster, 2).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(backbone(&f.db), &PartitionConfig::new(2, 4, 16.0))
            .unwrap();
        assert!(
            plan.stages[0].num_layers() < plan.stages[1].num_layers(),
            "{:?}",
            plan.stages
                .iter()
                .map(|s| s.layers.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn t_max_monotone_in_micro_batches() {
        // More micro-batches (same group batch) lengthen the critical path
        // factor but shrink T0; for compute-bound stages T_max ~ constant +
        // overheads, so it should not explode. Sanity: finite and positive.
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let t1 = p
            .partition_single(bb, &PartitionConfig::new(4, 1, 64.0))
            .unwrap()
            .t_max;
        let t4 = p
            .partition_single(bb, &PartitionConfig::new(4, 4, 64.0))
            .unwrap()
            .t_max;
        assert!(t1 > 0.0 && t4 > 0.0);
        // M=1 wastes the pipeline: its bound must be worse than M=4.
        assert!(t1 > t4, "t1={t1} t4={t4}");
    }

    #[test]
    fn self_conditioning_raises_bound() {
        let vanilla = {
            let mut m = zoo::stable_diffusion_v2_1();
            m.self_conditioning = None;
            m
        };
        let f_v = fixture(vanilla, 8, 64);
        let f_sc = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f_v.cluster, 8).unwrap();
        let bb = backbone(&f_v.db);
        let cfg = PartitionConfig::new(4, 4, 64.0);
        let t_v = Partitioner::new(&f_v.db, &f_v.cluster, &layout)
            .partition_single(bb, &cfg)
            .unwrap()
            .t_max;
        let t_sc = Partitioner::new(&f_sc.db, &f_sc.cluster, &layout)
            .partition_single(bb, &cfg)
            .unwrap()
            .t_max;
        assert!(t_sc > t_v, "t_sc={t_sc} t_v={t_v}");
    }

    #[test]
    fn rejects_bad_configs() {
        let f = fixture(zoo::tiny_model(), 4, 16);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(8, 2, 16.0)),
            Err(PartitionError::TooManyStages { .. })
        ));
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(3, 2, 16.0)),
            Err(PartitionError::NonUniformGroup { .. })
        ));
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(2, 0, 16.0)),
            Err(PartitionError::DegenerateConfig)
        ));
        assert!(matches!(
            p.partition_single(ComponentId(0), &PartitionConfig::new(2, 2, 16.0)),
            Err(PartitionError::NotABackbone(0))
        ));
        let mut stats = DpStats::default();
        assert!(matches!(
            p.partition_single_with(bb, &PartitionConfig::new(2, 2, 16.0), &[], &mut stats),
            Err(PartitionError::NoCostTables)
        ));
    }

    #[test]
    fn nonuniform_allows_unequal_replication() {
        let f = fixture(zoo::synthetic_model(8, 10.0, &[1.0], false), 3, 12);
        let layout = DataParallelLayout::new(&f.cluster, 3).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(
                backbone(&f.db),
                &PartitionConfig::new(2, 2, 12.0).with_nonuniform(),
            )
            .unwrap();
        assert_eq!(plan.devices_used(), 3);
        let reps: Vec<usize> = plan.stages.iter().map(|s| s.replication).collect();
        assert_eq!(reps.iter().sum::<usize>(), 3);
    }

    #[test]
    fn matches_reference_bit_for_bit() {
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        for (s, m) in [(1usize, 1usize), (2, 4), (4, 2), (8, 8)] {
            let cfg = PartitionConfig::new(s, m, 64.0);
            let fast = p.partition_single(bb, &cfg).unwrap();
            let reference = p.partition_single_reference(bb, &cfg).unwrap();
            assert_eq!(fast, reference, "uniform S={s} M={m}");
        }
        // Non-uniform replication exercises the full (l, d) grid.
        let f3 = fixture(zoo::synthetic_model(9, 10.0, &[1.0], false), 5, 20);
        let layout3 = DataParallelLayout::new(&f3.cluster, 5).unwrap();
        let p3 = Partitioner::new(&f3.db, &f3.cluster, &layout3);
        let bb3 = backbone(&f3.db);
        for s in [1usize, 2, 3, 4] {
            let cfg = PartitionConfig::new(s, 2, 20.0).with_nonuniform();
            let fast = p3.partition_single(bb3, &cfg).unwrap();
            let reference = p3.partition_single_reference(bb3, &cfg).unwrap();
            assert_eq!(fast, reference, "nonuniform S={s}");
        }
    }

    #[test]
    fn stats_count_candidates_and_prunes() {
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let cfg = PartitionConfig::new(4, 4, 64.0);
        let prefixes = p.build_prefixes(bb, &cfg);
        let mut stats = DpStats::default();
        let plan = p
            .partition_single_with(bb, &cfg, &prefixes, &mut stats)
            .unwrap();
        assert!(plan.covers(28));
        assert!(stats.candidates > 0);
        assert!(stats.pruned <= stats.candidates);
    }
}
