//! Single-backbone partitioning DP (paper §4.1, Eqns. 2–9).

use crate::config::PartitionConfig;
use crate::error::PartitionError;
use crate::pareto::ParetoFront;
use crate::plan::{PartitionPlan, StagePlan};
use crate::stage_cost::StageCost;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::ComponentId;
use dpipe_profile::ProfileDb;
use std::collections::HashMap;

/// A DP back-pointer: which stage was appended and which predecessor state
/// (and Pareto point) it extended.
#[derive(Debug, Clone)]
struct Choice {
    prev_l: usize,
    prev_d: usize,
    prev_point: usize,
    layers: std::ops::Range<usize>,
    replication: usize,
}

/// The unified backbone partitioner.
///
/// Holds references to the profile database, cluster topology and
/// data/pipeline layout; see the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Partitioner<'a> {
    cost: StageCost<'a>,
}

impl<'a> Partitioner<'a> {
    /// Creates a partitioner.
    pub fn new(
        db: &'a ProfileDb,
        cluster: &'a ClusterSpec,
        layout: &'a DataParallelLayout,
    ) -> Self {
        Partitioner {
            cost: StageCost::new(db, cluster, layout),
        }
    }

    /// The stage-cost evaluator (exposed for baselines that reuse the cost
    /// terms, e.g. SPP).
    pub fn cost(&self) -> &StageCost<'a> {
        &self.cost
    }

    fn self_cond_prob(&self) -> f64 {
        self.cost
            .db()
            .model()
            .self_conditioning
            .map_or(0.0, |sc| sc.probability)
    }

    /// Validates a request, returning `(L, D)`.
    fn validate(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<(usize, usize), PartitionError> {
        let model = self.cost.db().model();
        let comp = model
            .components
            .get(backbone.index())
            .ok_or(PartitionError::NotABackbone(backbone.index()))?;
        if !comp.is_trainable() {
            return Err(PartitionError::NotABackbone(backbone.index()));
        }
        let layers = comp.num_layers();
        let devices = self.cost.layout().group_size;
        if cfg.num_micro_batches == 0 || cfg.group_batch <= 0.0 || cfg.num_stages == 0 {
            return Err(PartitionError::DegenerateConfig);
        }
        if cfg.num_stages > layers {
            return Err(PartitionError::TooManyStages {
                stages: cfg.num_stages,
                layers,
            });
        }
        if cfg.num_stages > devices {
            return Err(PartitionError::TooFewDevices {
                stages: cfg.num_stages,
                devices,
            });
        }
        if cfg.force_uniform && !devices.is_multiple_of(cfg.num_stages) {
            return Err(PartitionError::NonUniformGroup {
                stages: cfg.num_stages,
                devices,
            });
        }
        Ok((layers, devices))
    }

    /// Optimally partitions `backbone` into `cfg.num_stages` stages over the
    /// pipeline group, minimising the Eqn. (1) upper bound (with the
    /// self-conditioning expectation of §4.3 when the model enables it).
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_single(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<PartitionPlan, PartitionError> {
        let (num_layers, num_devices) = self.validate(backbone, cfg)?;
        let s_total = cfg.num_stages;
        let micro = cfg.micro_batch();
        let sc_prob = self.self_cond_prob();

        // levels[s] maps (layers_used, devices_used) -> Pareto front.
        let mut levels: Vec<HashMap<(usize, usize), ParetoFront<Choice>>> =
            Vec::with_capacity(s_total + 1);
        let mut level0 = HashMap::new();
        let mut seed = ParetoFront::new();
        seed.insert(
            0.0,
            0.0,
            Choice {
                prev_l: 0,
                prev_d: 0,
                prev_point: 0,
                layers: 0..0,
                replication: 0,
            },
        );
        level0.insert((0usize, 0usize), seed);
        levels.push(level0);

        for s in 1..=s_total {
            let stages_left_after = s_total - s;
            let mut cur: HashMap<(usize, usize), ParetoFront<Choice>> = HashMap::new();
            let prev = &levels[s - 1];
            for (&(l, d), front) in prev {
                let reps: Vec<usize> = if cfg.force_uniform {
                    vec![num_devices / s_total]
                } else {
                    (1..=num_devices - d).collect()
                };
                for r in reps {
                    let d2 = d + r;
                    if d2 > num_devices {
                        continue;
                    }
                    // Remaining stages each need >= 1 device (uniform:
                    // exactly r each), and the final stage must land on
                    // exactly num_devices.
                    let dev_ok = if cfg.force_uniform {
                        d2 + stages_left_after * r == num_devices
                    } else {
                        num_devices - d2 >= stages_left_after
                            && (stages_left_after > 0 || d2 == num_devices)
                    };
                    if !dev_ok {
                        continue;
                    }
                    // Layer split: leave >= 1 layer per remaining stage.
                    let max_l2 = num_layers - stages_left_after;
                    for l2 in (l + 1)..=max_l2 {
                        let layers = l..l2;
                        let offsets: Vec<usize> = (d..d2).collect();
                        let terms = self.cost.stage_terms(
                            backbone,
                            layers.clone(),
                            r,
                            &offsets,
                            micro,
                            sc_prob,
                            1.0,
                        );
                        for (pi, &(w, y, _)) in front.points().iter().enumerate() {
                            let nw = w.max(terms.t0);
                            let ny = y.max(terms.sync_gap);
                            cur.entry((l2, d2)).or_default().insert(
                                nw,
                                ny,
                                Choice {
                                    prev_l: l,
                                    prev_d: d,
                                    prev_point: pi,
                                    layers: layers.clone(),
                                    replication: r,
                                },
                            );
                        }
                    }
                }
            }
            levels.push(cur);
        }

        let final_front = levels[s_total]
            .get(&(num_layers, num_devices))
            .filter(|f| !f.is_empty())
            .ok_or(PartitionError::TooManyStages {
                stages: s_total,
                layers: num_layers,
            })?;
        let coeff = cfg.critical_path_factor();
        let &(w, y, _) = final_front.best(coeff).expect("front non-empty");
        let best_idx = final_front
            .points()
            .iter()
            .position(|&(pw, py, _)| pw == w && py == y)
            .expect("best point present");

        // Backtrack.
        let mut stages_rev: Vec<StagePlan> = Vec::with_capacity(s_total);
        let mut key = (num_layers, num_devices);
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let front = &levels[s][&key];
            let (_, _, choice) = &front.points()[point];
            stages_rev.push(StagePlan {
                component: backbone,
                layers: choice.layers.clone(),
                replication: choice.replication,
                device_offsets: (choice.prev_d..choice.prev_d + choice.replication).collect(),
            });
            key = (choice.prev_l, choice.prev_d);
            point = choice.prev_point;
        }
        stages_rev.reverse();

        let r_last = stages_rev.last().expect("at least one stage").replication;
        let feedback = if sc_prob > 0.0 {
            sc_prob * self.cost.feedback_time(backbone, micro / r_last as f64)
        } else {
            0.0
        };
        let t_max = coeff * w + y + feedback;
        Ok(PartitionPlan {
            stages: stages_rev,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    struct Fixture {
        db: ProfileDb,
        cluster: ClusterSpec,
    }

    fn fixture(model: dpipe_model::ModelSpec, devices: usize, batch: u32) -> Fixture {
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        Fixture {
            db,
            cluster: ClusterSpec::single_node(devices),
        }
    }

    fn backbone(db: &ProfileDb) -> ComponentId {
        db.model().backbones().next().unwrap().0
    }

    #[test]
    fn partition_covers_all_layers() {
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        for s in [1usize, 2, 4, 8] {
            let plan = p
                .partition_single(backbone(&f.db), &PartitionConfig::new(s, 4, 64.0))
                .unwrap();
            assert_eq!(plan.num_stages(), s);
            assert!(plan.covers(28), "stages {:?}", plan.stages);
            assert_eq!(plan.devices_used(), 8);
        }
    }

    #[test]
    fn uniform_partition_balances_stage_times() {
        // With uniform per-layer costs, the DP should produce near-equal
        // stage compute times.
        let model = zoo::synthetic_model(12, 10.0, &[1.0], false);
        let f = fixture(model, 4, 16);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(backbone(&f.db), &PartitionConfig::new(4, 4, 16.0))
            .unwrap();
        let sizes: Vec<usize> = plan.stages.iter().map(|s| s.num_layers()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 3]);
    }

    #[test]
    fn skewed_model_gets_skewed_partition() {
        // First layers 4x heavier: the first stage should hold fewer layers.
        let mut model = zoo::synthetic_model(12, 10.0, &[1.0], false);
        {
            let bb = model
                .components
                .iter_mut()
                .find(|c| c.is_trainable())
                .unwrap();
            for l in bb.layers.iter_mut().take(4) {
                l.flops_per_sample *= 4.0;
            }
        }
        let f = fixture(model, 2, 16);
        let layout = DataParallelLayout::new(&f.cluster, 2).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(backbone(&f.db), &PartitionConfig::new(2, 4, 16.0))
            .unwrap();
        assert!(
            plan.stages[0].num_layers() < plan.stages[1].num_layers(),
            "{:?}",
            plan.stages
                .iter()
                .map(|s| s.layers.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn t_max_monotone_in_micro_batches() {
        // More micro-batches (same group batch) lengthen the critical path
        // factor but shrink T0; for compute-bound stages T_max ~ constant +
        // overheads, so it should not explode. Sanity: finite and positive.
        let f = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let t1 = p
            .partition_single(bb, &PartitionConfig::new(4, 1, 64.0))
            .unwrap()
            .t_max;
        let t4 = p
            .partition_single(bb, &PartitionConfig::new(4, 4, 64.0))
            .unwrap()
            .t_max;
        assert!(t1 > 0.0 && t4 > 0.0);
        // M=1 wastes the pipeline: its bound must be worse than M=4.
        assert!(t1 > t4, "t1={t1} t4={t4}");
    }

    #[test]
    fn self_conditioning_raises_bound() {
        let vanilla = {
            let mut m = zoo::stable_diffusion_v2_1();
            m.self_conditioning = None;
            m
        };
        let f_v = fixture(vanilla, 8, 64);
        let f_sc = fixture(zoo::stable_diffusion_v2_1(), 8, 64);
        let layout = DataParallelLayout::new(&f_v.cluster, 8).unwrap();
        let bb = backbone(&f_v.db);
        let cfg = PartitionConfig::new(4, 4, 64.0);
        let t_v = Partitioner::new(&f_v.db, &f_v.cluster, &layout)
            .partition_single(bb, &cfg)
            .unwrap()
            .t_max;
        let t_sc = Partitioner::new(&f_sc.db, &f_sc.cluster, &layout)
            .partition_single(bb, &cfg)
            .unwrap()
            .t_max;
        assert!(t_sc > t_v, "t_sc={t_sc} t_v={t_v}");
    }

    #[test]
    fn rejects_bad_configs() {
        let f = fixture(zoo::tiny_model(), 4, 16);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(8, 2, 16.0)),
            Err(PartitionError::TooManyStages { .. })
        ));
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(3, 2, 16.0)),
            Err(PartitionError::NonUniformGroup { .. })
        ));
        assert!(matches!(
            p.partition_single(bb, &PartitionConfig::new(2, 0, 16.0)),
            Err(PartitionError::DegenerateConfig)
        ));
        assert!(matches!(
            p.partition_single(ComponentId(0), &PartitionConfig::new(2, 2, 16.0)),
            Err(PartitionError::NotABackbone(0))
        ));
    }

    #[test]
    fn nonuniform_allows_unequal_replication() {
        let f = fixture(zoo::synthetic_model(8, 10.0, &[1.0], false), 3, 12);
        let layout = DataParallelLayout::new(&f.cluster, 3).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let plan = p
            .partition_single(
                backbone(&f.db),
                &PartitionConfig::new(2, 2, 12.0).with_nonuniform(),
            )
            .unwrap();
        assert_eq!(plan.devices_used(), 3);
        let reps: Vec<usize> = plan.stages.iter().map(|s| s.replication).collect();
        assert_eq!(reps.iter().sum::<usize>(), 3);
    }
}
