//! Bidirectional (two-backbone) partitioning DP (paper §4.2, Eqns. 10–16).

use crate::config::PartitionConfig;
use crate::error::PartitionError;
use crate::pareto::ParetoFront;
use crate::plan::{PartitionPlan, StagePlan};
use crate::single::Partitioner;
use dpipe_model::ComponentId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of bidirectional partitioning: one plan per backbone sharing the
/// same device chain. The *down* backbone pipelines from chain offset 0 to
/// the end; the *up* backbone pipelines in the reverse direction, so up's
/// stage 0 occupies the chain's last devices (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidirectionalPlan {
    /// Partition of the down-pipelined backbone (stage 0 at chain start).
    pub down: PartitionPlan,
    /// Partition of the up-pipelined backbone (stage 0 at chain end; its
    /// `device_offsets` are chain offsets, so stage 0's offsets are the
    /// largest).
    pub up: PartitionPlan,
    /// Combined bound `T^max_CDM` (Eqn. 12), seconds.
    pub t_max: f64,
}

/// Bandwidth-contention factor for two pipelines sharing links (paper §4.2
/// "we reasonably enlarge the communication time by a factor of 2").
const BIDIR_COMM_SCALE: f64 = 2.0;

#[derive(Debug, Clone)]
struct BiChoice {
    prev_i: usize,
    prev_j: usize,
    prev_point: usize,
    down_layers: std::ops::Range<usize>,
    up_layers: std::ops::Range<usize>,
}

impl<'a> Partitioner<'a> {
    /// Partitions two backbones for bidirectional pipelining over the same
    /// device chain, minimising the Eqn. (12) bound with `M_CDM = 2M`
    /// (both pipelines contribute `M` paired forward/backward slots in the
    /// stable phase).
    ///
    /// Only uniform replication (`r = D / S`) is supported, matching the
    /// paper's evaluation setting.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_bidirectional(
        &self,
        down: ComponentId,
        up: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<BidirectionalPlan, PartitionError> {
        let model = self.cost().db().model();
        for &c in &[down, up] {
            let comp = model
                .components
                .get(c.index())
                .ok_or(PartitionError::NotABackbone(c.index()))?;
            if !comp.is_trainable() {
                return Err(PartitionError::NotABackbone(c.index()));
            }
        }
        let l_down = model.component(down).num_layers();
        let l_up = model.component(up).num_layers();
        let s_total = cfg.num_stages;
        let devices = self.cost().layout().group_size;
        if cfg.num_micro_batches == 0 || cfg.group_batch <= 0.0 || s_total == 0 {
            return Err(PartitionError::DegenerateConfig);
        }
        if s_total > l_down.min(l_up) {
            return Err(PartitionError::TooManyStages {
                stages: s_total,
                layers: l_down.min(l_up),
            });
        }
        if s_total > devices {
            return Err(PartitionError::TooFewDevices {
                stages: s_total,
                devices,
            });
        }
        if !devices.is_multiple_of(s_total) {
            return Err(PartitionError::NonUniformGroup {
                stages: s_total,
                devices,
            });
        }
        let r = devices / s_total;
        let micro = cfg.micro_batch();
        let sc_prob = model.self_conditioning.map_or(0.0, |sc| sc.probability);

        // State (i, j) after s stages: down layers 0..i assigned to the
        // chain prefix, up layers (l_up - j)..l_up assigned to the same
        // prefix (up runs in reverse, so its *last* layers sit at the chain
        // start).
        let mut levels: Vec<HashMap<(usize, usize), ParetoFront<BiChoice>>> =
            Vec::with_capacity(s_total + 1);
        let mut seed_level = HashMap::new();
        let mut seed = ParetoFront::new();
        seed.insert(
            0.0,
            0.0,
            BiChoice {
                prev_i: 0,
                prev_j: 0,
                prev_point: 0,
                down_layers: 0..0,
                up_layers: 0..0,
            },
        );
        seed_level.insert((0usize, 0usize), seed);
        levels.push(seed_level);

        for s in 1..=s_total {
            let left = s_total - s;
            let mut cur: HashMap<(usize, usize), ParetoFront<BiChoice>> = HashMap::new();
            let prev = &levels[s - 1];
            let offsets: Vec<usize> = ((s - 1) * r..s * r).collect();
            for (&(i, j), front) in prev {
                // Down stage: layers i..i2 pipelining toward higher offsets.
                for i2 in (i + 1)..=(l_down - left) {
                    let down_layers = i..i2;
                    let down_terms = self.cost().stage_terms(
                        down,
                        down_layers.clone(),
                        r,
                        &offsets,
                        micro,
                        sc_prob,
                        BIDIR_COMM_SCALE,
                    );
                    for j2 in (j + 1)..=(l_up - left) {
                        // Up stage occupying the same devices holds up's
                        // layers (l_up - j2)..(l_up - j).
                        let up_layers = (l_up - j2)..(l_up - j);
                        let up_terms = self.cost().stage_terms(
                            up,
                            up_layers.clone(),
                            r,
                            &offsets,
                            micro,
                            sc_prob,
                            BIDIR_COMM_SCALE,
                        );
                        let t0 = down_terms.t0.max(up_terms.t0);
                        let gap = down_terms.sync_gap.max(up_terms.sync_gap);
                        for (pi, &(w, y, _)) in front.points().iter().enumerate() {
                            cur.entry((i2, j2)).or_default().insert(
                                w.max(t0),
                                y.max(gap),
                                BiChoice {
                                    prev_i: i,
                                    prev_j: j,
                                    prev_point: pi,
                                    down_layers: down_layers.clone(),
                                    up_layers: up_layers.clone(),
                                },
                            );
                        }
                    }
                }
            }
            levels.push(cur);
        }

        let final_front = levels[s_total]
            .get(&(l_down, l_up))
            .filter(|f| !f.is_empty())
            .ok_or(PartitionError::TooManyStages {
                stages: s_total,
                layers: l_down.min(l_up),
            })?;
        // M_CDM: paired forward/backward slots from both pipelines.
        let m_cdm = (2 * cfg.num_micro_batches) as f64;
        let coeff = m_cdm + 2.0 * s_total as f64 - 2.0;
        let &(w, y, _) = final_front.best(coeff).expect("front non-empty");
        let best_idx = final_front
            .points()
            .iter()
            .position(|&(pw, py, _)| pw == w && py == y)
            .expect("best point present");

        // Backtrack.
        let mut down_stages: Vec<StagePlan> = Vec::new();
        let mut up_stages_chain: Vec<StagePlan> = Vec::new();
        let mut key = (l_down, l_up);
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let front = &levels[s][&key];
            let (_, _, choice) = &front.points()[point];
            let offsets: Vec<usize> = ((s - 1) * r..s * r).collect();
            down_stages.push(StagePlan {
                component: down,
                layers: choice.down_layers.clone(),
                replication: r,
                device_offsets: offsets.clone(),
            });
            up_stages_chain.push(StagePlan {
                component: up,
                layers: choice.up_layers.clone(),
                replication: r,
                device_offsets: offsets,
            });
            key = (choice.prev_i, choice.prev_j);
            point = choice.prev_point;
        }
        down_stages.reverse();
        // up_stages_chain is currently in chain order from the deep end to
        // the front; in chain order from front it is reversed — but the up
        // *pipeline* order is from the chain end toward the front, which is
        // exactly the order we already have.
        let up_stages = up_stages_chain;

        let t_max = coeff * w + y;
        let mk_plan = |stages: Vec<StagePlan>| PartitionPlan {
            stages,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        };
        Ok(BidirectionalPlan {
            down: mk_plan(down_stages),
            up: mk_plan(up_stages),
            t_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::{ClusterSpec, DataParallelLayout};
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn setup() -> (dpipe_profile::ProfileDb, ClusterSpec) {
        let model = zoo::cdm_lsun();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 128);
        (db, ClusterSpec::single_node(8))
    }

    #[test]
    fn bidirectional_covers_both_backbones() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut backbones = db.model().backbones().map(|(id, _)| id);
        let b0 = backbones.next().unwrap();
        let b1 = backbones.next().unwrap();
        let plan = p
            .partition_bidirectional(b0, b1, &PartitionConfig::new(4, 4, 128.0))
            .unwrap();
        assert_eq!(plan.down.num_stages(), 4);
        assert_eq!(plan.up.num_stages(), 4);
        assert!(plan.down.covers(db.model().component(b0).num_layers()));
        // Up plan covers all layers too, but stage 0 holds the *last* chain
        // offsets. Verify coverage by sorting ranges.
        let mut ranges: Vec<_> = plan.up.stages.iter().map(|s| s.layers.clone()).collect();
        ranges.sort_by_key(|r| r.start);
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, db.model().component(b1).num_layers());
    }

    #[test]
    fn up_pipeline_stage0_sits_at_chain_start_offsets() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        let plan = p
            .partition_bidirectional(b0, b1, &PartitionConfig::new(2, 2, 64.0))
            .unwrap();
        // Down stage 0 at offsets [0..r); up stage 0 (its first pipeline
        // stage) holds up's FIRST layers and sits at the chain *end*.
        assert_eq!(plan.down.stages[0].device_offsets[0], 0);
        let up_first_layers = plan
            .up
            .stages
            .iter()
            .find(|s| s.layers.start == 0)
            .expect("some stage holds up layer 0");
        let max_offset = plan
            .up
            .stages
            .iter()
            .map(|s| s.device_offsets[0])
            .max()
            .unwrap();
        assert_eq!(up_first_layers.device_offsets[0], max_offset);
    }

    #[test]
    fn rejects_non_dividing_stages() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        assert!(matches!(
            p.partition_bidirectional(b0, b1, &PartitionConfig::new(3, 2, 64.0)),
            Err(PartitionError::NonUniformGroup { .. })
        ));
    }

    #[test]
    fn bound_beats_or_matches_sequential_estimate() {
        // Bidirectional shares devices; its bound should be far below the
        // sum of two standalone pipelines' bounds on half the devices each.
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        let cfg = PartitionConfig::new(4, 4, 128.0);
        let bi = p.partition_bidirectional(b0, b1, &cfg).unwrap();
        let solo0 = p.partition_single(b0, &cfg).unwrap();
        let solo1 = p.partition_single(b1, &cfg).unwrap();
        assert!(bi.t_max < solo0.t_max + solo1.t_max);
    }
}
