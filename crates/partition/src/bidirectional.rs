//! Bidirectional (two-backbone) partitioning DP (paper §4.2, Eqns. 10–16).
//!
//! Fast path: states live on a flat `(down_layers, up_layers)` grid per
//! level, per-level stage terms for every layer interval of both backbones
//! are tabulated up front from the shared [`CostPrefix`] tables, and the
//! same branch-and-bound bound as the single-backbone DP discards
//! candidates that cannot win. Bit-identical to
//! [`Partitioner::partition_bidirectional_reference`].

use crate::config::PartitionConfig;
use crate::dp::{DpStats, FrontArena};
use crate::error::PartitionError;
use crate::plan::{PartitionPlan, StagePlan};
use crate::single::Partitioner;
use crate::stage_cost::StageTerms;
use dpipe_model::ComponentId;
use dpipe_profile::CostPrefix;
use serde::{Deserialize, Serialize};

/// Result of bidirectional partitioning: one plan per backbone sharing the
/// same device chain. The *down* backbone pipelines from chain offset 0 to
/// the end; the *up* backbone pipelines in the reverse direction, so up's
/// stage 0 occupies the chain's last devices (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidirectionalPlan {
    /// Partition of the down-pipelined backbone (stage 0 at chain start).
    pub down: PartitionPlan,
    /// Partition of the up-pipelined backbone (stage 0 at chain end; its
    /// `device_offsets` are chain offsets, so stage 0's offsets are the
    /// largest).
    pub up: PartitionPlan,
    /// Combined bound `T^max_CDM` (Eqn. 12), seconds.
    pub t_max: f64,
}

/// Bandwidth-contention factor for two pipelines sharing links (paper §4.2
/// "we reasonably enlarge the communication time by a factor of 2").
const BIDIR_COMM_SCALE: f64 = 2.0;

impl<'a> Partitioner<'a> {
    /// Validates a bidirectional request, returning `(L_down, L_up, r)`.
    pub(crate) fn validate_bidirectional(
        &self,
        down: ComponentId,
        up: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<(usize, usize, usize), PartitionError> {
        let model = self.cost().db().model();
        for &c in &[down, up] {
            let comp = model
                .components
                .get(c.index())
                .ok_or(PartitionError::NotABackbone(c.index()))?;
            if !comp.is_trainable() {
                return Err(PartitionError::NotABackbone(c.index()));
            }
        }
        let l_down = model.component(down).num_layers();
        let l_up = model.component(up).num_layers();
        let s_total = cfg.num_stages;
        let devices = self.cost().layout().group_size;
        if cfg.num_micro_batches == 0 || cfg.group_batch <= 0.0 || s_total == 0 {
            return Err(PartitionError::DegenerateConfig);
        }
        if s_total > l_down.min(l_up) {
            return Err(PartitionError::TooManyStages {
                stages: s_total,
                layers: l_down.min(l_up),
            });
        }
        if s_total > devices {
            return Err(PartitionError::TooFewDevices {
                stages: s_total,
                devices,
            });
        }
        if !devices.is_multiple_of(s_total) {
            return Err(PartitionError::NonUniformGroup {
                stages: s_total,
                devices,
            });
        }
        Ok((l_down, l_up, devices / s_total))
    }

    /// Partitions two backbones for bidirectional pipelining over the same
    /// device chain, minimising the Eqn. (12) bound with `M_CDM = 2M`
    /// (both pipelines contribute `M` paired forward/backward slots in the
    /// stable phase).
    ///
    /// Only uniform replication (`r = D / S`) is supported, matching the
    /// paper's evaluation setting.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_bidirectional(
        &self,
        down: ComponentId,
        up: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<BidirectionalPlan, PartitionError> {
        let (_, _, r) = self.validate_bidirectional(down, up, cfg)?;
        let batch = cfg.micro_batch() / r as f64;
        let build = |comp: ComponentId| -> Vec<CostPrefix> {
            (0..self.cost().num_classes())
                .map(|class| {
                    let db = self.cost().db_for(class);
                    let mut prefix = CostPrefix::new(db, comp);
                    prefix.ensure_batch(db, batch);
                    prefix
                })
                .collect()
        };
        let prefixes_down = build(down);
        let prefixes_up = build(up);
        let mut stats = DpStats::default();
        self.partition_bidirectional_with(down, up, cfg, &prefixes_down, &prefixes_up, &mut stats)
    }

    /// [`Partitioner::partition_bidirectional`] against caller-supplied
    /// per-class [`CostPrefix`] tables (index = device-class index, one
    /// element on homogeneous clusters), accumulating DP counters into
    /// `stats`.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    ///
    /// # Panics
    ///
    /// Panics if a prefix lacks the row for `micro_batch / r` (see
    /// [`CostPrefix::ensure_batch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn partition_bidirectional_with(
        &self,
        down: ComponentId,
        up: ComponentId,
        cfg: &PartitionConfig,
        prefixes_down: &[CostPrefix],
        prefixes_up: &[CostPrefix],
        stats: &mut DpStats,
    ) -> Result<BidirectionalPlan, PartitionError> {
        let (l_down, l_up, r) = self.validate_bidirectional(down, up, cfg)?;
        if prefixes_down.is_empty() || prefixes_up.is_empty() {
            return Err(PartitionError::NoCostTables);
        }
        let s_total = cfg.num_stages;
        let micro = cfg.micro_batch();
        let sc_prob = self.self_cond_prob();
        let m_cdm = (2 * cfg.num_micro_batches) as f64;
        let coeff = m_cdm + 2.0 * s_total as f64 - 2.0;

        // Resolved cost views — one row lookup per (backbone, class) for
        // the whole DP (uniform replication means a single local batch).
        let batch = micro / r as f64;
        let costs_down: Vec<_> = prefixes_down.iter().map(|p| p.batch_view(batch)).collect();
        let costs_up: Vec<_> = prefixes_up.iter().map(|p| p.batch_view(batch)).collect();

        // Per-level stage terms for every candidate interval of both
        // backbones. `down_at(s)[i * (l_down + 1) + i2]` holds the terms of
        // down-stage `i..i2` placed at level-`s` offsets; likewise for up
        // with its reversed layer mapping. The level's offsets determine
        // its device class (both pipelines share the same devices).
        let level_terms = |s: usize| -> (Vec<StageTerms>, Vec<StageTerms>) {
            let link = self.cost().input_link((s - 1) * r);
            let shape = self.cost().sync_shape((s - 1) * r..s * r);
            let class = self.cost().class_of_offsets((s - 1) * r..s * r);
            let zero = StageTerms {
                t0: 0.0,
                sync_gap: 0.0,
            };
            let mut dt = vec![zero; (l_down + 1) * (l_down + 1)];
            for i in 0..l_down {
                for i2 in (i + 1)..=l_down {
                    dt[i * (l_down + 1) + i2] = self.cost().stage_terms_prefixed(
                        &costs_down[class.min(costs_down.len() - 1)],
                        i..i2,
                        link,
                        sc_prob,
                        BIDIR_COMM_SCALE,
                        shape,
                    );
                }
            }
            let mut ut = vec![zero; (l_up + 1) * (l_up + 1)];
            for j in 0..l_up {
                for j2 in (j + 1)..=l_up {
                    ut[j * (l_up + 1) + j2] = self.cost().stage_terms_prefixed(
                        &costs_up[class.min(costs_up.len() - 1)],
                        (l_up - j2)..(l_up - j),
                        link,
                        sc_prob,
                        BIDIR_COMM_SCALE,
                        shape,
                    );
                }
            }
            (dt, ut)
        };

        // Branch-and-bound seed from the even split of both backbones,
        // costed directly (no per-level interval tables needed for one
        // stage pair per level).
        let mut bound = f64::INFINITY;
        {
            let mut w_h = 0.0f64;
            let mut y_h = 0.0f64;
            for k in 1..=s_total {
                let link = self.cost().input_link((k - 1) * r);
                let shape = self.cost().sync_shape((k - 1) * r..k * r);
                let class = self.cost().class_of_offsets((k - 1) * r..k * r);
                let (i, i2) = ((k - 1) * l_down / s_total, k * l_down / s_total);
                let (j, j2) = ((k - 1) * l_up / s_total, k * l_up / s_total);
                let d = self.cost().stage_terms_prefixed(
                    &costs_down[class.min(costs_down.len() - 1)],
                    i..i2,
                    link,
                    sc_prob,
                    BIDIR_COMM_SCALE,
                    shape,
                );
                let u = self.cost().stage_terms_prefixed(
                    &costs_up[class.min(costs_up.len() - 1)],
                    (l_up - j2)..(l_up - j),
                    link,
                    sc_prob,
                    BIDIR_COMM_SCALE,
                    shape,
                );
                w_h = w_h.max(d.t0.max(u.t0));
                y_h = y_h.max(d.sync_gap.max(u.sync_gap));
            }
            bound = bound.min(coeff * w_h + y_h);
        }

        let state = |i: usize, j: usize| i * (l_up + 1) + j;
        let num_states = (l_down + 1) * (l_up + 1);
        let final_state = state(l_down, l_up);
        let mut levels: Vec<FrontArena> = Vec::with_capacity(s_total + 1);
        let mut seed = FrontArena::new(num_states);
        let seg = seed.begin_state();
        seed.insert(seg, 0.0, 0.0, 0, 0);
        seed.end_state(state(0, 0), seg);
        levels.push(seed);

        for s in 1..=s_total {
            let left = s_total - s;
            let (dt, ut) = level_terms(s);
            let mut cur = FrontArena::new(num_states);
            let prev = &levels[s - 1];
            for i2 in s..=(l_down - left) {
                for j2 in s..=(l_up - left) {
                    let dest = state(i2, j2);
                    let seg = cur.begin_state();
                    for i in (s - 1)..i2 {
                        let d_terms = dt[i * (l_down + 1) + i2];
                        for j in (s - 1)..j2 {
                            let front = prev.front(state(i, j));
                            if front.is_empty() {
                                continue;
                            }
                            let u_terms = ut[j * (l_up + 1) + j2];
                            let t0 = d_terms.t0.max(u_terms.t0);
                            let gap = d_terms.sync_gap.max(u_terms.sync_gap);
                            for (pi, p) in front.iter().enumerate() {
                                stats.candidates += 1;
                                let nw = p.w.max(t0);
                                let ny = p.y.max(gap);
                                let cost = coeff * nw + ny;
                                if cost > bound {
                                    stats.pruned += 1;
                                    continue;
                                }
                                if dest == final_state && s == s_total {
                                    bound = bound.min(cost);
                                }
                                cur.insert(seg, nw, ny, state(i, j) as u32, pi as u32);
                            }
                        }
                    }
                    cur.end_state(dest, seg);
                }
            }
            levels.push(cur);
        }

        let best_idx =
            levels[s_total]
                .best(final_state, coeff)
                .ok_or(PartitionError::TooManyStages {
                    stages: s_total,
                    layers: l_down.min(l_up),
                })?;
        let best_point = levels[s_total].front(final_state)[best_idx];
        let (w, y) = (best_point.w, best_point.y);

        // Parent-pointer backtrack; stage geometry is recovered from the
        // state-index deltas, up's layers through its reversed mapping.
        let mut down_stages: Vec<StagePlan> = Vec::new();
        let mut up_stages_chain: Vec<StagePlan> = Vec::new();
        let mut cur_state = final_state;
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let p = levels[s].front(cur_state)[point];
            let (i2, j2) = (cur_state / (l_up + 1), cur_state % (l_up + 1));
            let prev_state = p.prev_state as usize;
            let (i, j) = (prev_state / (l_up + 1), prev_state % (l_up + 1));
            let offsets: Vec<usize> = ((s - 1) * r..s * r).collect();
            down_stages.push(StagePlan {
                component: down,
                layers: i..i2,
                replication: r,
                device_offsets: offsets.clone(),
            });
            up_stages_chain.push(StagePlan {
                component: up,
                layers: (l_up - j2)..(l_up - j),
                replication: r,
                device_offsets: offsets,
            });
            cur_state = prev_state;
            point = p.prev_point as usize;
        }
        down_stages.reverse();
        // up_stages_chain is currently in chain order from the deep end to
        // the front; in chain order from front it is reversed — but the up
        // *pipeline* order is from the chain end toward the front, which is
        // exactly the order we already have.
        let up_stages = up_stages_chain;

        let t_max = coeff * w + y;
        let mk_plan = |stages: Vec<StagePlan>| PartitionPlan {
            stages,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        };
        Ok(BidirectionalPlan {
            down: mk_plan(down_stages),
            up: mk_plan(up_stages),
            t_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::{ClusterSpec, DataParallelLayout};
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn setup() -> (dpipe_profile::ProfileDb, ClusterSpec) {
        let model = zoo::cdm_lsun();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 128);
        (db, ClusterSpec::single_node(8))
    }

    #[test]
    fn bidirectional_covers_both_backbones() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut backbones = db.model().backbones().map(|(id, _)| id);
        let b0 = backbones.next().unwrap();
        let b1 = backbones.next().unwrap();
        let plan = p
            .partition_bidirectional(b0, b1, &PartitionConfig::new(4, 4, 128.0))
            .unwrap();
        assert_eq!(plan.down.num_stages(), 4);
        assert_eq!(plan.up.num_stages(), 4);
        assert!(plan.down.covers(db.model().component(b0).num_layers()));
        // Up plan covers all layers too, but stage 0 holds the *last* chain
        // offsets. Verify coverage by sorting ranges.
        let mut ranges: Vec<_> = plan.up.stages.iter().map(|s| s.layers.clone()).collect();
        ranges.sort_by_key(|r| r.start);
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, db.model().component(b1).num_layers());
    }

    #[test]
    fn up_pipeline_stage0_sits_at_chain_start_offsets() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        let plan = p
            .partition_bidirectional(b0, b1, &PartitionConfig::new(2, 2, 64.0))
            .unwrap();
        // Down stage 0 at offsets [0..r); up stage 0 (its first pipeline
        // stage) holds up's FIRST layers and sits at the chain *end*.
        assert_eq!(plan.down.stages[0].device_offsets[0], 0);
        let up_first_layers = plan
            .up
            .stages
            .iter()
            .find(|s| s.layers.start == 0)
            .expect("some stage holds up layer 0");
        let max_offset = plan
            .up
            .stages
            .iter()
            .map(|s| s.device_offsets[0])
            .max()
            .unwrap();
        assert_eq!(up_first_layers.device_offsets[0], max_offset);
    }

    #[test]
    fn rejects_non_dividing_stages() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        assert!(matches!(
            p.partition_bidirectional(b0, b1, &PartitionConfig::new(3, 2, 64.0)),
            Err(PartitionError::NonUniformGroup { .. })
        ));
    }

    #[test]
    fn bound_beats_or_matches_sequential_estimate() {
        // Bidirectional shares devices; its bound should be far below the
        // sum of two standalone pipelines' bounds on half the devices each.
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        let cfg = PartitionConfig::new(4, 4, 128.0);
        let bi = p.partition_bidirectional(b0, b1, &cfg).unwrap();
        let solo0 = p.partition_single(b0, &cfg).unwrap();
        let solo1 = p.partition_single(b1, &cfg).unwrap();
        assert!(bi.t_max < solo0.t_max + solo1.t_max);
    }

    #[test]
    fn matches_reference_bit_for_bit() {
        let (db, cluster) = setup();
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        for (s, m) in [(1usize, 2usize), (2, 1), (4, 4), (8, 2)] {
            let cfg = PartitionConfig::new(s, m, 128.0);
            let fast = p.partition_bidirectional(b0, b1, &cfg).unwrap();
            let reference = p.partition_bidirectional_reference(b0, b1, &cfg).unwrap();
            assert_eq!(fast, reference, "S={s} M={m}");
        }
    }
}
