//! Two-objective Pareto fronts for the partitioning DP.

/// A Pareto front over `(w, y)` cost pairs (both minimised), each tagged
/// with a payload identifying the DP choice that produced it.
///
/// `T_max = c·W + Y` for a positive coefficient `c` is minimised by some
/// point on the front, so keeping the front (rather than a single scalar)
/// makes the DP exact for Eqn. (2) of the paper.
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    points: Vec<(f64, f64, T)>,
}

impl<T: Clone> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront { points: Vec::new() }
    }
}

impl<T: Clone> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a candidate point, keeping only non-dominated points.
    /// Returns true if the point was kept.
    pub fn insert(&mut self, w: f64, y: f64, payload: T) -> bool {
        // Dominated by an existing point?
        if self.points.iter().any(|&(pw, py, _)| pw <= w && py <= y) {
            return false;
        }
        // Remove points dominated by the newcomer.
        self.points.retain(|&(pw, py, _)| !(w <= pw && y <= py));
        self.points.push((w, y, payload));
        true
    }

    /// All non-dominated points.
    pub fn points(&self) -> &[(f64, f64, T)] {
        &self.points
    }

    /// True if no point has been kept.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The point minimising `coeff * w + y`.
    pub fn best(&self, coeff: f64) -> Option<&(f64, f64, T)> {
        self.points.iter().min_by(|a, b| {
            let ca = coeff * a.0 + a.1;
            let cb = coeff * b.0 + b.1;
            ca.total_cmp(&cb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_rejected() {
        let mut f = ParetoFront::new();
        assert!(f.insert(1.0, 5.0, 'a'));
        assert!(!f.insert(2.0, 6.0, 'b')); // dominated by a
        assert!(f.insert(0.5, 7.0, 'c')); // trade-off
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn new_point_evicts_dominated() {
        let mut f = ParetoFront::new();
        f.insert(2.0, 2.0, 'a');
        f.insert(3.0, 1.0, 'b');
        assert!(f.insert(1.0, 1.0, 'c')); // dominates both
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].2, 'c');
    }

    #[test]
    fn best_minimises_weighted_sum() {
        let mut f = ParetoFront::new();
        f.insert(1.0, 10.0, 'a'); // c*1 + 10
        f.insert(5.0, 1.0, 'b'); // c*5 + 1
                                 // With a large coefficient, the small-w point wins.
        assert_eq!(f.best(100.0).unwrap().2, 'a');
        // With a tiny coefficient, the small-y point wins.
        assert_eq!(f.best(0.01).unwrap().2, 'b');
    }

    #[test]
    fn equal_points_do_not_duplicate() {
        let mut f = ParetoFront::new();
        assert!(f.insert(1.0, 1.0, 'a'));
        assert!(!f.insert(1.0, 1.0, 'b'));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn empty_front_behaviour() {
        let f: ParetoFront<()> = ParetoFront::new();
        assert!(f.is_empty());
        assert!(f.best(1.0).is_none());
    }
}
