//! Partitioning configuration.

use serde::{Deserialize, Serialize};

/// One (S, M, B_group) configuration for the partitioner, where `B_group`
/// is the batch handled by a single pipeline-parallel group (the global
/// batch divided by the data-parallel degree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of pipeline stages `S`.
    pub num_stages: usize,
    /// Number of micro-batches `M`.
    pub num_micro_batches: usize,
    /// Batch size processed by one pipeline group per iteration.
    pub group_batch: f64,
    /// Force every stage to use the same replication degree `r = D / S`
    /// (the paper's evaluation setting; footnote 2 of §4.1).
    pub force_uniform: bool,
}

impl PartitionConfig {
    /// Creates a uniform-replication config.
    pub fn new(num_stages: usize, num_micro_batches: usize, group_batch: f64) -> Self {
        PartitionConfig {
            num_stages,
            num_micro_batches,
            group_batch,
            force_uniform: true,
        }
    }

    /// Allows stages to use different replication degrees.
    pub fn with_nonuniform(mut self) -> Self {
        self.force_uniform = false;
        self
    }

    /// Micro-batch size `B̄ = B_group / M`.
    pub fn micro_batch(&self) -> f64 {
        self.group_batch / self.num_micro_batches as f64
    }

    /// The coefficient `M + 2S − 2` multiplying `T0` in Eqn. (1).
    pub fn critical_path_factor(&self) -> f64 {
        (self.num_micro_batches + 2 * self.num_stages - 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_batch_division() {
        let c = PartitionConfig::new(2, 4, 64.0);
        assert_eq!(c.micro_batch(), 16.0);
    }

    #[test]
    fn critical_path_factor_matches_eqn1() {
        // M + 2S - 2 with S = 4, M = 8 => 14.
        assert_eq!(
            PartitionConfig::new(4, 8, 64.0).critical_path_factor(),
            14.0
        );
        // S = 1 degenerates to M.
        assert_eq!(PartitionConfig::new(1, 8, 64.0).critical_path_factor(), 8.0);
    }

    #[test]
    fn nonuniform_toggle() {
        assert!(PartitionConfig::new(2, 2, 8.0).force_uniform);
        assert!(
            !PartitionConfig::new(2, 2, 8.0)
                .with_nonuniform()
                .force_uniform
        );
    }
}
