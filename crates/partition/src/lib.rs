//! Backbone partitioning via dynamic programming (paper §4).
//!
//! Implements the unified partitioning algorithm of DiffusionPipe:
//!
//! * **Single backbone** (§4.1): minimises the critical-path upper bound
//!   `T_max = T0 (M + 2S − 2) + T0^{S−C}` (Eqn. 1) over all ways of cutting
//!   the backbone's layer chain into `S` stages and replicating each stage
//!   over devices (Eqns. 2–9).
//! * **Multiple backbones** (§4.2): bidirectional (Chimera-style) pipelining
//!   of two backbones over the same device chain (Eqns. 10–16).
//! * **Self-conditioning** (§4.3): the extra forward pass inflates the
//!   per-stage bound (Eqn. 17) and adds the feedback transfer `T_F`
//!   (Eqn. 18); the optimiser scores the expectation over the
//!   self-conditioning probability.
//!
//! Because `T_max` is a weighted sum of two maxima (`W` and `Y`) that cannot
//! be minimised independently, the DP keeps a small *Pareto front* of
//! `(W, Y)` pairs per state instead of a single scalar, guaranteeing the
//! optimum of Eqn. (2) is never pruned.
//!
//! # Fast-path layout (parent-pointer DP)
//!
//! The production DPs are engineered around three ideas; the naive
//! originals are preserved verbatim as
//! [`Partitioner::partition_single_reference`] /
//! [`Partitioner::partition_bidirectional_reference`] and the equivalence
//! is asserted bit-for-bit by the golden suite:
//!
//! * **O(1) cost queries.** All interval sums (forward/backward time,
//!   gradient bytes, boundary activation bytes) are answered from a
//!   precomputed [`dpipe_profile::CostPrefix`] whose triangular tables
//!   reproduce the naive left-to-right summation exactly, so the fast path
//!   rounds identically. Gradient-sync all-reduce costs use a cached
//!   [`SyncShape`] (device count, machines spanned, slowest intra-link
//!   scale) instead of materialising device lists. On heterogeneous
//!   clusters there is one table set per device class and each stage is
//!   looked up against the effective class of its devices.
//! * **Parent pointers instead of payload clones.** A DP state is a cell
//!   on a flat grid — `(layers_used, devices_used)` for the single DP,
//!   `(down_layers, up_layers)` for the bidirectional one — and each
//!   Pareto point stores only `(W, Y, prev_state, prev_point)` (32 bytes,
//!   `Copy`). Fronts are contiguous spans in one arena per level, built
//!   destination-major so construction never interleaves. Backtracking
//!   reconstructs every stage's layer range, replication and device
//!   offsets purely from state-index deltas; nothing is cloned per
//!   candidate.
//! * **Branch-and-bound pruning.** Before the DP runs, an even
//!   layer/device split is costed as a complete feasible solution; any
//!   candidate whose partial `coeff·W + Y` already exceeds that bound (or
//!   the tightened bound once complete solutions appear) is discarded.
//!   Because `W` and `Y` only grow along a chain and the final selection
//!   minimises exactly `coeff·W + Y`, pruning provably never changes the
//!   selected partition — a property the test-suite asserts against the
//!   unpruned reference. [`DpStats`] reports candidate and prune counts.
//!
//! # Example
//!
//! ```
//! use dpipe_cluster::{ClusterSpec, DataParallelLayout};
//! use dpipe_model::zoo;
//! use dpipe_partition::{PartitionConfig, Partitioner};
//! use dpipe_profile::{DeviceModel, Profiler};
//!
//! let model = zoo::stable_diffusion_v2_1();
//! let cluster = ClusterSpec::single_node(8);
//! let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
//! let layout = DataParallelLayout::new(&cluster, 8).unwrap();
//! let part = Partitioner::new(&db, &cluster, &layout);
//! let backbone = model.backbones().next().unwrap().0;
//! let plan = part
//!     .partition_single(backbone, &PartitionConfig::new(4, 4, 64.0))
//!     .unwrap();
//! assert_eq!(plan.stages.len(), 4);
//! ```

mod bidirectional;
mod config;
mod dp;
mod error;
mod pareto;
mod plan;
mod reference;
mod search;
mod single;
mod stage_cost;

pub use bidirectional::BidirectionalPlan;
pub use config::PartitionConfig;
pub use dp::DpStats;
pub use error::PartitionError;
pub use pareto::ParetoFront;
pub use plan::{PartitionPlan, StagePlan};
pub use search::{enumerate_configs, HyperParams, SearchSpace, SearchSpaceError};
pub use single::Partitioner;
pub use stage_cost::{StageCost, StageTerms, SyncShape};
