//! Flat, allocation-free state storage for the partitioning DPs.
//!
//! Both the single-backbone and the bidirectional DP keep, per level `s`, a
//! Pareto front of `(W, Y)` points for every reachable state. The original
//! implementation stored each front as its own `Vec` inside a `HashMap` and
//! cloned the chosen layer ranges into every point; this module replaces
//! that with one flat arena per level:
//!
//! * all points of a level live in a single `Vec<FrontPoint>`;
//! * a state's front is a contiguous `(start, len)` span into the arena —
//!   possible because the DPs build each destination state *completely*
//!   before moving to the next (dest-major candidate order);
//! * a point carries no owned data, only the packed parent coordinates
//!   (`prev_state`, `prev_point`) — the stage's layer range, replication
//!   and device offsets are all reconstructed from the state indices during
//!   backtracking.
//!
//! Pareto semantics are identical to [`crate::ParetoFront`]: a candidate
//! dominated by an existing point (`<=` in both coordinates) is rejected,
//! and insertion evicts newly-dominated points while preserving order — the
//! tie-breaking behaviour the equivalence suite depends on.

/// Counters describing one DP run (or several, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Candidate transitions evaluated (state × predecessor Pareto point).
    pub candidates: u64,
    /// Candidates discarded by the branch-and-bound upper bound.
    pub pruned: u64,
}

impl DpStats {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &DpStats) {
        self.candidates += other.candidates;
        self.pruned += other.pruned;
    }

    /// Fraction of candidates pruned (0 when nothing was evaluated).
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }
}

/// One Pareto point plus its parent pointer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrontPoint {
    /// `W` — running max of per-stage `T0`.
    pub w: f64,
    /// `Y` — running max of per-stage sync gaps.
    pub y: f64,
    /// Flattened predecessor state index in the previous level.
    pub prev_state: u32,
    /// Point index within the predecessor state's front.
    pub prev_point: u32,
}

/// Per-level arena of Pareto fronts over a fixed state grid.
#[derive(Debug, Clone)]
pub(crate) struct FrontArena {
    points: Vec<FrontPoint>,
    /// Per state: (start, len) into `points`; `u32::MAX` start = never built.
    spans: Vec<(u32, u32)>,
}

impl FrontArena {
    /// An arena for `num_states` states with all fronts empty.
    pub fn new(num_states: usize) -> Self {
        FrontArena {
            points: Vec::new(),
            spans: vec![(u32::MAX, 0); num_states],
        }
    }

    /// Marks the start of destination state construction; returns the
    /// segment start to pass to [`FrontArena::insert`].
    #[inline]
    pub fn begin_state(&self) -> usize {
        self.points.len()
    }

    /// Seals the current destination state's span.
    #[inline]
    pub fn end_state(&mut self, state: usize, seg_start: usize) {
        let len = self.points.len() - seg_start;
        self.spans[state] = (seg_start as u32, len as u32);
    }

    /// Pareto-inserts `(w, y)` into the segment that started at
    /// `seg_start`. Returns true if the point was kept.
    #[inline]
    pub fn insert(
        &mut self,
        seg_start: usize,
        w: f64,
        y: f64,
        prev_state: u32,
        prev_point: u32,
    ) -> bool {
        // Dominated by an existing point (including exact duplicates)?
        if self.points[seg_start..]
            .iter()
            .any(|p| p.w <= w && p.y <= y)
        {
            return false;
        }
        // Evict points the newcomer dominates, preserving order.
        let mut write = seg_start;
        for read in seg_start..self.points.len() {
            let p = self.points[read];
            if !(w <= p.w && y <= p.y) {
                self.points[write] = p;
                write += 1;
            }
        }
        self.points.truncate(write);
        self.points.push(FrontPoint {
            w,
            y,
            prev_state,
            prev_point,
        });
        true
    }

    /// The front of a state (empty slice if unreachable).
    #[inline]
    pub fn front(&self, state: usize) -> &[FrontPoint] {
        let (start, len) = self.spans[state];
        if start == u32::MAX {
            return &[];
        }
        &self.points[start as usize..start as usize + len as usize]
    }

    /// Index of the point minimising `coeff * w + y` within a state's
    /// front — first minimum wins, matching `ParetoFront::best`.
    pub fn best(&self, state: usize, coeff: f64) -> Option<usize> {
        let front = self.front(state);
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in front.iter().enumerate() {
            let cost = coeff * p.w + p.y;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::ParetoFront;

    #[test]
    fn arena_matches_pareto_front_semantics() {
        let cases: Vec<(f64, f64)> = vec![
            (1.0, 5.0),
            (2.0, 6.0), // dominated
            (0.5, 7.0),
            (1.0, 5.0), // duplicate
            (0.4, 4.0), // dominates several
            (0.4, 4.0),
            (3.0, 0.5),
        ];
        let mut reference = ParetoFront::new();
        let mut arena = FrontArena::new(1);
        let seg = arena.begin_state();
        for (i, &(w, y)) in cases.iter().enumerate() {
            let kept_ref = reference.insert(w, y, i);
            let kept = arena.insert(seg, w, y, 0, i as u32);
            assert_eq!(kept, kept_ref, "case {i}");
        }
        arena.end_state(0, seg);
        let ref_pts: Vec<(f64, f64)> = reference.points().iter().map(|&(w, y, _)| (w, y)).collect();
        let arena_pts: Vec<(f64, f64)> = arena.front(0).iter().map(|p| (p.w, p.y)).collect();
        assert_eq!(ref_pts, arena_pts);
        for coeff in [0.01, 1.0, 100.0] {
            let best_ref = reference.best(coeff).unwrap();
            let best_idx = arena.best(0, coeff).unwrap();
            let p = &arena.front(0)[best_idx];
            assert_eq!((p.w, p.y), (best_ref.0, best_ref.1), "coeff {coeff}");
        }
    }

    #[test]
    fn unbuilt_state_is_empty() {
        let arena = FrontArena::new(3);
        assert!(arena.front(2).is_empty());
        assert!(arena.best(2, 1.0).is_none());
    }

    #[test]
    fn stats_merge_and_rate() {
        let mut a = DpStats {
            candidates: 10,
            pruned: 4,
        };
        a.merge(&DpStats {
            candidates: 10,
            pruned: 0,
        });
        assert_eq!(a.candidates, 20);
        assert_eq!(a.pruned, 4);
        assert!((a.prune_rate() - 0.2).abs() < 1e-12);
        assert_eq!(DpStats::default().prune_rate(), 0.0);
    }
}
