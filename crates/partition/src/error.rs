//! Partitioning errors.

use std::error::Error;
use std::fmt;

/// Errors from the partitioning DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// More stages requested than backbone layers available.
    TooManyStages {
        /// Requested stage count.
        stages: usize,
        /// Available layers.
        layers: usize,
    },
    /// The pipeline group is smaller than the stage count.
    TooFewDevices {
        /// Requested stage count.
        stages: usize,
        /// Devices in the pipeline group.
        devices: usize,
    },
    /// Uniform replication requires `S` to divide `D`.
    NonUniformGroup {
        /// Requested stage count.
        stages: usize,
        /// Devices in the pipeline group.
        devices: usize,
    },
    /// The referenced component is not a trainable backbone.
    NotABackbone(usize),
    /// Zero micro-batches or zero batch size.
    DegenerateConfig,
    /// An empty per-class [`CostPrefix`](dpipe_profile::CostPrefix) slice
    /// was supplied; every cluster has at least one device class.
    NoCostTables,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TooManyStages { stages, layers } => {
                write!(f, "cannot cut {layers} layers into {stages} stages")
            }
            PartitionError::TooFewDevices { stages, devices } => {
                write!(
                    f,
                    "{stages} stages need at least {stages} devices, group has {devices}"
                )
            }
            PartitionError::NonUniformGroup { stages, devices } => {
                write!(
                    f,
                    "uniform replication needs {stages} to divide group size {devices}"
                )
            }
            PartitionError::NotABackbone(i) => {
                write!(f, "component c{i} is not a trainable backbone")
            }
            PartitionError::DegenerateConfig => {
                f.write_str("batch size and micro-batch count must be positive")
            }
            PartitionError::NoCostTables => {
                f.write_str("at least one per-class cost table is required")
            }
        }
    }
}

impl Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_quantities() {
        let e = PartitionError::TooManyStages {
            stages: 8,
            layers: 4,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('4'));
        assert!(PartitionError::NotABackbone(2).to_string().contains("c2"));
    }
}
