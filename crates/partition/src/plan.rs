//! Partitioning results.

use dpipe_cluster::{DeviceId, PipelineGroup};
use dpipe_model::ComponentId;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One pipeline stage: a contiguous layer range of a backbone, replicated
/// over a suffix of the group's device chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// The backbone this stage belongs to.
    pub component: ComponentId,
    /// Layer indices `[start, end)` within the backbone.
    pub layers: Range<usize>,
    /// Replication degree `r` (data parallelism within the group).
    pub replication: usize,
    /// Positions of this stage's devices within the pipeline group's chain.
    pub device_offsets: Vec<usize>,
}

impl StagePlan {
    /// Number of layers in the stage.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The devices running this stage in the given group.
    ///
    /// # Panics
    ///
    /// Panics if an offset exceeds the group size.
    pub fn devices_in_group(&self, group: &PipelineGroup) -> Vec<DeviceId> {
        self.device_offsets
            .iter()
            .map(|&o| group.devices[o])
            .collect()
    }

    /// Local batch size seen by one replica for a given micro-batch size.
    pub fn local_batch(&self, micro_batch: f64) -> f64 {
        micro_batch / self.replication as f64
    }
}

/// A complete partition of one backbone, plus the cost-bound bookkeeping the
/// optimiser used to select it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Stages in pipeline order (stage 0 first).
    pub stages: Vec<StagePlan>,
    /// Number of micro-batches `M`.
    pub num_micro_batches: usize,
    /// Micro-batch size `B̄`.
    pub micro_batch: f64,
    /// The bound `T0` (max per-stage micro-batch time / comm time) at the
    /// optimum, in seconds.
    pub t0: f64,
    /// The bound `T0^{S−C}` (max sync − compensation gap), in seconds.
    pub t_sync_gap: f64,
    /// Upper bound on pipeline iteration time (Eqn. 1 / 12 / 18), seconds.
    pub t_max: f64,
}

impl PartitionPlan {
    /// Number of stages `S`.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Checks that stages cover `0..num_layers` contiguously without
    /// overlap. Used by tests and debug assertions.
    pub fn covers(&self, num_layers: usize) -> bool {
        let mut next = 0;
        for s in &self.stages {
            if s.layers.start != next || s.layers.is_empty() {
                return false;
            }
            next = s.layers.end;
        }
        next == num_layers
    }

    /// Total devices used (sum of replications).
    pub fn devices_used(&self) -> usize {
        self.stages.iter().map(|s| s.replication).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(start: usize, end: usize, r: usize, offsets: Vec<usize>) -> StagePlan {
        StagePlan {
            component: ComponentId(0),
            layers: start..end,
            replication: r,
            device_offsets: offsets,
        }
    }

    #[test]
    fn covers_detects_gaps_and_overlap() {
        let plan = PartitionPlan {
            stages: vec![stage(0, 2, 1, vec![0]), stage(2, 5, 1, vec![1])],
            num_micro_batches: 2,
            micro_batch: 4.0,
            t0: 0.0,
            t_sync_gap: 0.0,
            t_max: 0.0,
        };
        assert!(plan.covers(5));
        assert!(!plan.covers(6));
        let bad = PartitionPlan {
            stages: vec![stage(0, 2, 1, vec![0]), stage(3, 5, 1, vec![1])],
            ..plan
        };
        assert!(!bad.covers(5));
    }

    #[test]
    fn local_batch_divides_by_replication() {
        let s = stage(0, 1, 4, vec![0, 1, 2, 3]);
        assert_eq!(s.local_batch(16.0), 4.0);
    }

    #[test]
    fn devices_in_group_maps_offsets() {
        use dpipe_cluster::PipelineGroup;
        let g = PipelineGroup {
            index: 1,
            devices: (4..8).map(DeviceId).collect(),
        };
        let s = stage(0, 1, 2, vec![2, 3]);
        assert_eq!(s.devices_in_group(&g), vec![DeviceId(6), DeviceId(7)]);
    }
}
