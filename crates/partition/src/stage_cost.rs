//! Per-stage cost terms: `T0(s)`, `T_S(s)`, `T_C(s)` (Eqns. 3–6, 17).

use dpipe_cluster::{ClassMap, ClusterSpec, CommModel, DataParallelLayout, DeviceId, LinkParams};
use dpipe_model::ComponentId;
use dpipe_profile::{BatchCosts, ProfileDb};
use std::ops::Range;

/// The *shape* of a stage's gradient-sync group — device count, machines
/// spanned, and the slowest spanned machine's intra-link scale — which
/// fully determines the all-reduce cost model for any byte volume.
/// Precomputed once per candidate device range by the DP hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncShape {
    /// Devices all-reducing together (replicas × pipeline groups).
    pub group: usize,
    /// Machines those devices span.
    pub nodes: usize,
    /// Slowest spanned machine's intra-node link scale (1.0 homogeneous).
    pub intra_scale: f64,
}

/// Evaluates the paper's per-stage cost equations for candidate stages.
///
/// On heterogeneous clusters ([`ClusterSpec::machine_classes`]) a stage's
/// compute terms are looked up against the *effective class* of the devices
/// it lands on: the slowest class among its replicas across every pipeline
/// group (replicas split the micro-batch evenly and run in lockstep, so the
/// slowest device bounds the stage). Supply one [`ProfileDb`] per distinct
/// class with [`StageCost::with_class_dbs`]; without them every class falls
/// back to the reference database (compute is treated as homogeneous while
/// link/memory effects still apply).
#[derive(Debug)]
pub struct StageCost<'a> {
    db: &'a ProfileDb,
    cluster: &'a ClusterSpec,
    comm: CommModel,
    layout: &'a DataParallelLayout,
    /// One profile database per distinct device class, in class order.
    class_dbs: Option<&'a [ProfileDb]>,
    /// Resolved device classes of the cluster.
    class_map: ClassMap,
    /// Chain offset → effective class index across every pipeline group.
    offset_class: Vec<usize>,
}

/// The cost terms of one candidate stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTerms {
    /// `T0(s)` — max of compute time and inter-stage communication time for
    /// one micro-batch (Eqn. 3, or Eqn. 17 under self-conditioning).
    pub t0: f64,
    /// `T_S(s) − T_C(s)` — the sync/compensation gap (Eqn. 6), clamped at 0.
    pub sync_gap: f64,
}

impl<'a> StageCost<'a> {
    /// Creates a cost evaluator.
    pub fn new(
        db: &'a ProfileDb,
        cluster: &'a ClusterSpec,
        layout: &'a DataParallelLayout,
    ) -> Self {
        let class_map = cluster.class_map();
        let offset_class = (0..layout.group_size)
            .map(|o| {
                class_map.effective_class(
                    layout
                        .groups
                        .iter()
                        .filter_map(|g| g.devices.get(o).copied()),
                )
            })
            .collect();
        StageCost {
            db,
            cluster,
            comm: cluster.comm_model(),
            layout,
            class_dbs: None,
            class_map,
            offset_class,
        }
    }

    /// Supplies one [`ProfileDb`] per distinct device class (class order of
    /// [`ClusterSpec::class_map`]); stage compute terms are then looked up
    /// against the class of the devices each stage lands on.
    pub fn with_class_dbs(mut self, class_dbs: &'a [ProfileDb]) -> Self {
        self.class_dbs = Some(class_dbs);
        self
    }

    /// The reference profile database in use.
    pub fn db(&self) -> &ProfileDb {
        self.db
    }

    /// Number of distinct device classes on the cluster (≥ 1).
    pub fn num_classes(&self) -> usize {
        self.class_map.num_classes()
    }

    /// The profile database answering for a device class (the reference
    /// database when no per-class databases were supplied).
    pub fn db_for(&self, class: usize) -> &ProfileDb {
        self.class_dbs
            .and_then(|dbs| dbs.get(class))
            .unwrap_or(self.db)
    }

    /// The effective class of a contiguous chain-offset range: the slowest
    /// class among the devices at those offsets in every pipeline group
    /// (ties toward the smaller class index, the [`ClassMap`] rule).
    /// Class 0 for an empty range.
    pub fn class_of_offsets(&self, offsets: Range<usize>) -> usize {
        self.class_map
            .effective_of_indices(offsets.map(|o| self.offset_class.get(o).copied().unwrap_or(0)))
    }

    /// The communication model in use.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    /// Link carrying pipeline traffic into the stage whose first device sits
    /// at chain `offset` of group 0. `None` for stage 0 (no predecessor).
    pub fn input_link(&self, offset: usize) -> Option<LinkParams> {
        if offset == 0 {
            return None;
        }
        let group0 = &self.layout.groups[0];
        let a = group0.devices[offset - 1];
        let b = group0.devices[offset];
        Some(self.comm.p2p_link(a, b))
    }

    /// Compute part of `T0(s)`: forward + backward of the stage's layers for
    /// one micro-batch at local batch `micro_batch / r`, timed on the
    /// reference device class. With `self_cond = true` the forward term
    /// doubles (Eqn. 17). ([`StageCost::stage_terms`] resolves the stage's
    /// device class and times against the matching database.)
    pub fn compute_time(
        &self,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        micro_batch: f64,
        self_cond: bool,
    ) -> f64 {
        self.compute_time_on(self.db, comp, layers, replication, micro_batch, self_cond)
    }

    fn compute_time_on(
        &self,
        db: &ProfileDb,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        micro_batch: f64,
        self_cond: bool,
    ) -> f64 {
        let b = micro_batch / replication as f64;
        let fwd = db.fwd_time_range(comp, layers.clone(), b);
        let bwd = db.bwd_time_range(comp, layers, b);
        if self_cond {
            2.0 * fwd + bwd
        } else {
            fwd + bwd
        }
    }

    /// Communication part of `T0(s)`: `(C^f + C^b)/R_p2p + 2 L_p2p`
    /// (Eqn. 3), or `(2C^f + C^b)/R_p2p + 3 L_p2p` under self-conditioning
    /// (Eqn. 17). `comm_scale` inflates bandwidth contention (the paper uses
    /// 2.0 for bidirectional pipelines).
    #[allow(clippy::too_many_arguments)]
    pub fn comm_time(
        &self,
        comp: ComponentId,
        boundary_layer: usize,
        replication: usize,
        micro_batch: f64,
        link: Option<LinkParams>,
        self_cond: bool,
        comm_scale: f64,
    ) -> f64 {
        let Some(link) = link else { return 0.0 };
        let b = micro_batch / replication as f64;
        let bytes = self
            .db
            .boundary_bytes(comp, dpipe_model::LayerId(boundary_layer), b);
        let (vol, lats) = if self_cond {
            (3.0 * bytes as f64, 3.0)
        } else {
            (2.0 * bytes as f64, 2.0)
        };
        comm_scale * vol / link.bandwidth + lats * link.latency
    }

    /// `T0(s)` — the max of compute and communication (Eqn. 3 / 17), timed
    /// on the reference device class.
    #[allow(clippy::too_many_arguments)]
    pub fn t0(
        &self,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        micro_batch: f64,
        link: Option<LinkParams>,
        self_cond: bool,
        comm_scale: f64,
    ) -> f64 {
        self.t0_on(
            self.db,
            comp,
            layers,
            replication,
            micro_batch,
            link,
            self_cond,
            comm_scale,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn t0_on(
        &self,
        db: &ProfileDb,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        micro_batch: f64,
        link: Option<LinkParams>,
        self_cond: bool,
        comm_scale: f64,
    ) -> f64 {
        let compute = self.compute_time_on(
            db,
            comp,
            layers.clone(),
            replication,
            micro_batch,
            self_cond,
        );
        let comm = if layers.start > 0 || link.is_some() {
            self.comm_time(
                comp,
                layers.start.saturating_sub(1),
                replication,
                micro_batch,
                link,
                self_cond,
                comm_scale,
            )
        } else {
            0.0
        };
        compute.max(comm)
    }

    /// Devices over which this stage's gradients are all-reduced: its `r`
    /// devices in every pipeline group (cross-group data parallelism plus
    /// intra-group replication).
    pub fn sync_devices(&self, device_offsets: &[usize]) -> Vec<DeviceId> {
        let mut devs = Vec::with_capacity(device_offsets.len() * self.layout.groups.len());
        for g in &self.layout.groups {
            for &o in device_offsets {
                devs.push(g.devices[o]);
            }
        }
        devs
    }

    /// `T_S(s)` — gradient synchronisation time (Eqn. 4).
    pub fn sync_time(
        &self,
        comp: ComponentId,
        layers: Range<usize>,
        device_offsets: &[usize],
    ) -> f64 {
        let bytes = self.db.grad_bytes_range(comp, layers);
        let devs = self.sync_devices(device_offsets);
        self.comm.allreduce_time(bytes, &devs)
    }

    /// `T_C(s)` — compensation: the backward time of the stage's layers for
    /// one micro-batch (the paper's lower bound, Eqn. 5), timed on the
    /// reference device class.
    pub fn compensation_time(
        &self,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        micro_batch: f64,
    ) -> f64 {
        self.db
            .bwd_time_range(comp, layers, micro_batch / replication as f64)
    }

    /// Full stage terms under an expectation over self-conditioning: with
    /// probability `sc_prob` the iteration pays the Eqn.-17 `T0`, otherwise
    /// the Eqn.-3 `T0`. Compute terms are timed on the effective device
    /// class of the stage's offsets ([`StageCost::class_of_offsets`]).
    #[allow(clippy::too_many_arguments)]
    pub fn stage_terms(
        &self,
        comp: ComponentId,
        layers: Range<usize>,
        replication: usize,
        device_offsets: &[usize],
        micro_batch: f64,
        sc_prob: f64,
        comm_scale: f64,
    ) -> StageTerms {
        let first = device_offsets.first().copied().unwrap_or(0);
        let class = self.class_of_offsets(first..first + device_offsets.len());
        let db = self.db_for(class);
        let link = self.input_link(first);
        let t0_plain = self.t0_on(
            db,
            comp,
            layers.clone(),
            replication,
            micro_batch,
            link,
            false,
            comm_scale,
        );
        let t0 = if sc_prob > 0.0 {
            let t0_sc = self.t0_on(
                db,
                comp,
                layers.clone(),
                replication,
                micro_batch,
                link,
                true,
                comm_scale,
            );
            sc_prob * t0_sc + (1.0 - sc_prob) * t0_plain
        } else {
            t0_plain
        };
        let ts = self.sync_time(comp, layers.clone(), device_offsets);
        let tc = db.bwd_time_range(comp, layers, micro_batch / replication as f64);
        StageTerms {
            t0,
            sync_gap: (ts - tc).max(0.0),
        }
    }

    /// The sync-group shape for a stage occupying the contiguous chain
    /// offsets `device_offsets` (replicated across every pipeline group).
    pub fn sync_shape(&self, device_offsets: Range<usize>) -> SyncShape {
        let offsets: Vec<usize> = device_offsets.collect();
        let devs = self.sync_devices(&offsets);
        SyncShape {
            group: devs.len(),
            nodes: self.cluster.machines_spanned(&devs),
            intra_scale: self.comm.min_intra_link_scale(&devs),
        }
    }

    /// [`StageCost::stage_terms`] answered in O(1) from a resolved
    /// [`BatchCosts`] view (obtain one with
    /// [`dpipe_profile::CostPrefix::batch_view`] at batch
    /// `micro_batch / replication`; on heterogeneous clusters the view must
    /// come from the prefix of the stage's effective class), bit-identical
    /// to the naive evaluation: every sub-expression mirrors the
    /// corresponding naive method, with interval sums taken from the prefix
    /// table (which reproduces `ProfileDb`'s left-to-right folds exactly)
    /// and the all-reduce answered via the cached [`SyncShape`].
    pub fn stage_terms_prefixed(
        &self,
        costs: &BatchCosts<'_>,
        layers: Range<usize>,
        link: Option<LinkParams>,
        sc_prob: f64,
        comm_scale: f64,
        shape: SyncShape,
    ) -> StageTerms {
        let fwd = costs.fwd_range(&layers);
        let bwd = costs.bwd_range(&layers);
        // Mirrors `comm_time`: zero without an input link, else the α–β
        // transfer of the boundary activation placed after `layers.start-1`.
        let comm = |self_cond: bool| -> f64 {
            let Some(link) = link else { return 0.0 };
            let bytes = costs.boundary_bytes(layers.start.saturating_sub(1));
            let (vol, lats) = if self_cond {
                (3.0 * bytes as f64, 3.0)
            } else {
                (2.0 * bytes as f64, 2.0)
            };
            comm_scale * vol / link.bandwidth + lats * link.latency
        };
        // Mirrors `t0` (Eqn. 3) and its Eqn.-17 self-conditioning variant.
        let t0_plain = (fwd + bwd).max(comm(false));
        let t0 = if sc_prob > 0.0 {
            let t0_sc = (2.0 * fwd + bwd).max(comm(true));
            sc_prob * t0_sc + (1.0 - sc_prob) * t0_plain
        } else {
            t0_plain
        };
        // Mirrors `sync_time` (Eqn. 4) and `compensation_time` (Eqn. 5).
        let ts = self.comm.allreduce_time_shape_scaled(
            costs.grad_bytes_range(&layers),
            shape.group,
            shape.nodes,
            shape.intra_scale,
        );
        StageTerms {
            t0,
            sync_gap: (ts - bwd).max(0.0),
        }
    }

    /// Self-conditioning feedback transfer `T_F = O_L(B̄)/R_p2p + L_p2p`
    /// (Eqn. 18): the last stage's output travels back to stage 0.
    pub fn feedback_time(&self, comp: ComponentId, micro_batch: f64) -> f64 {
        let group0 = &self.layout.groups[0];
        let first = group0.devices[0];
        // dpipe-analyze: allow(no-panic) -- DeviceGroup is never built empty; devices[0] above leans on the same invariant
        let last = *group0.devices.last().expect("group is non-empty");
        if first == last {
            return 0.0;
        }
        let link = self.comm.p2p_link(last, first);
        let bytes = self.db.output_bytes(comp, micro_batch);
        bytes as f64 / link.bandwidth + link.latency
    }

    /// The cluster this evaluator plans for.
    pub fn cluster(&self) -> &ClusterSpec {
        self.cluster
    }

    /// The data-parallel layout this evaluator plans for.
    pub fn layout(&self) -> &DataParallelLayout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};
    use std::sync::Arc;

    struct Fixture {
        db: ProfileDb,
        cluster: ClusterSpec,
    }

    fn fixture() -> Fixture {
        let model = zoo::stable_diffusion_v2_1();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
        Fixture {
            db,
            cluster: ClusterSpec::single_node(8),
        }
    }

    fn backbone(db: &ProfileDb) -> ComponentId {
        db.model().backbones().next().unwrap().0
    }

    #[test]
    fn t0_compute_dominates_for_conv_stages() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let link = sc.input_link(4);
        let t0 = sc.t0(bb, 14..28, 2, 16.0, link, false, 1.0);
        let compute = sc.compute_time(bb, 14..28, 2, 16.0, false);
        assert_eq!(t0, compute, "intra-node p2p should not dominate");
    }

    #[test]
    fn self_cond_inflates_t0() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let plain = sc.t0(bb, 0..14, 4, 16.0, None, false, 1.0);
        let with_sc = sc.t0(bb, 0..14, 4, 16.0, None, true, 1.0);
        // 2*fwd + bwd vs fwd + bwd with bwd = 2*fwd: ratio 4/3.
        assert!(
            (with_sc / plain - 4.0 / 3.0).abs() < 0.01,
            "{}",
            with_sc / plain
        );
    }

    #[test]
    fn stage_terms_expectation_interpolates() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        let bb = backbone(&f.db);
        let t_none = sc
            .stage_terms(bb, 0..14, 4, &[0, 1, 2, 3], 16.0, 0.0, 1.0)
            .t0;
        let t_always = sc
            .stage_terms(bb, 0..14, 4, &[0, 1, 2, 3], 16.0, 1.0, 1.0)
            .t0;
        let t_half = sc
            .stage_terms(bb, 0..14, 4, &[0, 1, 2, 3], 16.0, 0.5, 1.0)
            .t0;
        assert!((t_half - 0.5 * (t_none + t_always)).abs() < 1e-12);
    }

    #[test]
    fn sync_devices_span_groups() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap(); // 2 groups
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        let devs = sc.sync_devices(&[2, 3]);
        assert_eq!(
            devs,
            vec![DeviceId(2), DeviceId(3), DeviceId(6), DeviceId(7)]
        );
    }

    #[test]
    fn feedback_time_zero_on_single_device_group() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 1).unwrap();
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        assert_eq!(sc.feedback_time(backbone(&f.db), 8.0), 0.0);
    }

    #[test]
    fn input_link_none_for_stage_zero() {
        let f = fixture();
        let layout = DataParallelLayout::new(&f.cluster, 8).unwrap();
        let sc = StageCost::new(&f.db, &f.cluster, &layout);
        assert!(sc.input_link(0).is_none());
        assert!(sc.input_link(4).is_some());
    }

    #[test]
    fn sync_gap_clamped_non_negative() {
        // A stage with huge backward and tiny gradients has TS < TC.
        let model = Arc::new(zoo::tiny_model());
        let db = ProfileDb::new(model, DeviceModel::a100_like());
        let cluster = ClusterSpec::single_node(2);
        let layout = DataParallelLayout::new(&cluster, 2).unwrap();
        let sc = StageCost::new(&db, &cluster, &layout);
        let bb = db.model().backbones().next().unwrap().0;
        let terms = sc.stage_terms(bb, 0..4, 1, &[0], 64.0, 0.0, 1.0);
        assert!(terms.sync_gap >= 0.0);
    }
}
