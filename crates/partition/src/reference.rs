//! Naive reference implementations of the §4 partitioning DPs.
//!
//! These are the pre-optimisation algorithms, kept as the ground truth the
//! fast paths in [`crate::single`] and [`crate::bidirectional`] must match
//! *bit for bit*: per-candidate cost terms are re-derived from the
//! [`ProfileDb`] by walking every layer, states live in per-level maps, and
//! no branch-and-bound pruning is applied. Two deliberate properties make
//! the comparison exact rather than approximate:
//!
//! * states are iterated in sorted order (`BTreeMap`), so candidates reach
//!   each destination front in `(prev_state, point)` order — the same
//!   canonical order the dest-major fast path produces (the original code
//!   iterated a `HashMap`, which made tie-breaking — and therefore whole
//!   plans — nondeterministic across runs);
//! * cost arithmetic is expression-for-expression the same as the fast
//!   path's, with interval sums evaluated naively.
//!
//! The golden-equivalence suite and `plan_bench` run these to prove the
//! optimised planner changes nothing but speed.

use crate::config::PartitionConfig;
use crate::error::PartitionError;
use crate::pareto::ParetoFront;
use crate::plan::{PartitionPlan, StagePlan};
use crate::single::Partitioner;
use crate::BidirectionalPlan;
use dpipe_model::ComponentId;
use std::collections::BTreeMap;

/// A DP back-pointer: which stage was appended and which predecessor state
/// (and Pareto point) it extended.
#[derive(Debug, Clone)]
struct Choice {
    prev_l: usize,
    prev_d: usize,
    prev_point: usize,
    layers: std::ops::Range<usize>,
    replication: usize,
}

#[derive(Debug, Clone)]
struct BiChoice {
    prev_i: usize,
    prev_j: usize,
    prev_point: usize,
    down_layers: std::ops::Range<usize>,
    up_layers: std::ops::Range<usize>,
}

/// Bandwidth-contention factor for two pipelines sharing links (paper §4.2).
const BIDIR_COMM_SCALE: f64 = 2.0;

impl<'a> Partitioner<'a> {
    /// The naive DP behind [`Partitioner::partition_single`]; same
    /// contract, O(layers) cost evaluation per candidate and no pruning.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_single_reference(
        &self,
        backbone: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<PartitionPlan, PartitionError> {
        let (num_layers, num_devices) = self.validate(backbone, cfg)?;
        let s_total = cfg.num_stages;
        let micro = cfg.micro_batch();
        let sc_prob = self.self_cond_prob();

        // levels[s] maps (layers_used, devices_used) -> Pareto front.
        let mut levels: Vec<BTreeMap<(usize, usize), ParetoFront<Choice>>> =
            Vec::with_capacity(s_total + 1);
        let mut level0 = BTreeMap::new();
        let mut seed = ParetoFront::new();
        seed.insert(
            0.0,
            0.0,
            Choice {
                prev_l: 0,
                prev_d: 0,
                prev_point: 0,
                layers: 0..0,
                replication: 0,
            },
        );
        level0.insert((0usize, 0usize), seed);
        levels.push(level0);

        for s in 1..=s_total {
            let stages_left_after = s_total - s;
            let mut cur: BTreeMap<(usize, usize), ParetoFront<Choice>> = BTreeMap::new();
            let prev = &levels[s - 1];
            for (&(l, d), front) in prev {
                let reps: Vec<usize> = if cfg.force_uniform {
                    vec![num_devices / s_total]
                } else {
                    (1..=num_devices - d).collect()
                };
                for r in reps {
                    let d2 = d + r;
                    if d2 > num_devices {
                        continue;
                    }
                    // Remaining stages each need >= 1 device (uniform:
                    // exactly r each), and the final stage must land on
                    // exactly num_devices.
                    let dev_ok = if cfg.force_uniform {
                        d2 + stages_left_after * r == num_devices
                    } else {
                        num_devices - d2 >= stages_left_after
                            && (stages_left_after > 0 || d2 == num_devices)
                    };
                    if !dev_ok {
                        continue;
                    }
                    // Layer split: leave >= 1 layer per remaining stage.
                    let max_l2 = num_layers - stages_left_after;
                    for l2 in (l + 1)..=max_l2 {
                        let layers = l..l2;
                        let offsets: Vec<usize> = (d..d2).collect();
                        let terms = self.cost().stage_terms(
                            backbone,
                            layers.clone(),
                            r,
                            &offsets,
                            micro,
                            sc_prob,
                            1.0,
                        );
                        for (pi, &(w, y, _)) in front.points().iter().enumerate() {
                            let nw = w.max(terms.t0);
                            let ny = y.max(terms.sync_gap);
                            cur.entry((l2, d2)).or_default().insert(
                                nw,
                                ny,
                                Choice {
                                    prev_l: l,
                                    prev_d: d,
                                    prev_point: pi,
                                    layers: layers.clone(),
                                    replication: r,
                                },
                            );
                        }
                    }
                }
            }
            levels.push(cur);
        }

        let final_front = levels[s_total]
            .get(&(num_layers, num_devices))
            .filter(|f| !f.is_empty())
            .ok_or(PartitionError::TooManyStages {
                stages: s_total,
                layers: num_layers,
            })?;
        let coeff = cfg.critical_path_factor();
        // dpipe-analyze: allow(no-panic) -- final_front was filtered non-empty above, so best() finds a point
        let &(w, y, _) = final_front.best(coeff).expect("front non-empty");
        let best_idx = final_front
            .points()
            .iter()
            .position(|&(pw, py, _)| pw == w && py == y)
            // dpipe-analyze: allow(no-panic) -- w and y come from this front's own points, so position() matches
            .expect("best point present");

        // Backtrack.
        let mut stages_rev: Vec<StagePlan> = Vec::with_capacity(s_total);
        let mut key = (num_layers, num_devices);
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let front = &levels[s][&key];
            let (_, _, choice) = &front.points()[point];
            stages_rev.push(StagePlan {
                component: backbone,
                layers: choice.layers.clone(),
                replication: choice.replication,
                device_offsets: (choice.prev_d..choice.prev_d + choice.replication).collect(),
            });
            key = (choice.prev_l, choice.prev_d);
            point = choice.prev_point;
        }
        stages_rev.reverse();

        // dpipe-analyze: allow(no-panic) -- the backtrack loop pushes one stage per s in 1..=s_total, and s_total >= 1
        let r_last = stages_rev.last().expect("at least one stage").replication;
        let feedback = if sc_prob > 0.0 {
            sc_prob * self.cost().feedback_time(backbone, micro / r_last as f64)
        } else {
            0.0
        };
        let t_max = coeff * w + y + feedback;
        Ok(PartitionPlan {
            stages: stages_rev,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        })
    }

    /// The naive DP behind [`Partitioner::partition_bidirectional`]; same
    /// contract, no prefix tables and no pruning.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn partition_bidirectional_reference(
        &self,
        down: ComponentId,
        up: ComponentId,
        cfg: &PartitionConfig,
    ) -> Result<BidirectionalPlan, PartitionError> {
        let (l_down, l_up, r) = self.validate_bidirectional(down, up, cfg)?;
        let s_total = cfg.num_stages;
        let micro = cfg.micro_batch();
        let sc_prob = self.self_cond_prob();

        // State (i, j) after s stages: down layers 0..i assigned to the
        // chain prefix, up layers (l_up - j)..l_up assigned to the same
        // prefix (up runs in reverse, so its *last* layers sit at the chain
        // start).
        let mut levels: Vec<BTreeMap<(usize, usize), ParetoFront<BiChoice>>> =
            Vec::with_capacity(s_total + 1);
        let mut seed_level = BTreeMap::new();
        let mut seed = ParetoFront::new();
        seed.insert(
            0.0,
            0.0,
            BiChoice {
                prev_i: 0,
                prev_j: 0,
                prev_point: 0,
                down_layers: 0..0,
                up_layers: 0..0,
            },
        );
        seed_level.insert((0usize, 0usize), seed);
        levels.push(seed_level);

        for s in 1..=s_total {
            let left = s_total - s;
            let mut cur: BTreeMap<(usize, usize), ParetoFront<BiChoice>> = BTreeMap::new();
            let prev = &levels[s - 1];
            let offsets: Vec<usize> = ((s - 1) * r..s * r).collect();
            for (&(i, j), front) in prev {
                // Down stage: layers i..i2 pipelining toward higher offsets.
                for i2 in (i + 1)..=(l_down - left) {
                    let down_layers = i..i2;
                    let down_terms = self.cost().stage_terms(
                        down,
                        down_layers.clone(),
                        r,
                        &offsets,
                        micro,
                        sc_prob,
                        BIDIR_COMM_SCALE,
                    );
                    for j2 in (j + 1)..=(l_up - left) {
                        // Up stage occupying the same devices holds up's
                        // layers (l_up - j2)..(l_up - j).
                        let up_layers = (l_up - j2)..(l_up - j);
                        let up_terms = self.cost().stage_terms(
                            up,
                            up_layers.clone(),
                            r,
                            &offsets,
                            micro,
                            sc_prob,
                            BIDIR_COMM_SCALE,
                        );
                        let t0 = down_terms.t0.max(up_terms.t0);
                        let gap = down_terms.sync_gap.max(up_terms.sync_gap);
                        for (pi, &(w, y, _)) in front.points().iter().enumerate() {
                            cur.entry((i2, j2)).or_default().insert(
                                w.max(t0),
                                y.max(gap),
                                BiChoice {
                                    prev_i: i,
                                    prev_j: j,
                                    prev_point: pi,
                                    down_layers: down_layers.clone(),
                                    up_layers: up_layers.clone(),
                                },
                            );
                        }
                    }
                }
            }
            levels.push(cur);
        }

        let final_front = levels[s_total]
            .get(&(l_down, l_up))
            .filter(|f| !f.is_empty())
            .ok_or(PartitionError::TooManyStages {
                stages: s_total,
                layers: l_down.min(l_up),
            })?;
        // M_CDM: paired forward/backward slots from both pipelines.
        let m_cdm = (2 * cfg.num_micro_batches) as f64;
        let coeff = m_cdm + 2.0 * s_total as f64 - 2.0;
        // dpipe-analyze: allow(no-panic) -- final_front was filtered non-empty above, so best() finds a point
        let &(w, y, _) = final_front.best(coeff).expect("front non-empty");
        let best_idx = final_front
            .points()
            .iter()
            .position(|&(pw, py, _)| pw == w && py == y)
            // dpipe-analyze: allow(no-panic) -- w and y come from this front's own points, so position() matches
            .expect("best point present");

        // Backtrack.
        let mut down_stages: Vec<StagePlan> = Vec::new();
        let mut up_stages_chain: Vec<StagePlan> = Vec::new();
        let mut key = (l_down, l_up);
        let mut point = best_idx;
        for s in (1..=s_total).rev() {
            let front = &levels[s][&key];
            let (_, _, choice) = &front.points()[point];
            let offsets: Vec<usize> = ((s - 1) * r..s * r).collect();
            down_stages.push(StagePlan {
                component: down,
                layers: choice.down_layers.clone(),
                replication: r,
                device_offsets: offsets.clone(),
            });
            up_stages_chain.push(StagePlan {
                component: up,
                layers: choice.up_layers.clone(),
                replication: r,
                device_offsets: offsets,
            });
            key = (choice.prev_i, choice.prev_j);
            point = choice.prev_point;
        }
        down_stages.reverse();
        // up_stages_chain is in pipeline order already (stage 0 at the
        // chain end); see `partition_bidirectional`.
        let up_stages = up_stages_chain;

        let t_max = coeff * w + y;
        let mk_plan = |stages: Vec<StagePlan>| PartitionPlan {
            stages,
            num_micro_batches: cfg.num_micro_batches,
            micro_batch: micro,
            t0: w,
            t_sync_gap: y,
            t_max,
        };
        Ok(BidirectionalPlan {
            down: mk_plan(down_stages),
            up: mk_plan(up_stages),
            t_max,
        })
    }
}
