//! Property tests for the partitioning DP, including optimality against
//! brute-force enumeration on small instances.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::{zoo, ComponentId};
use dpipe_partition::{PartitionConfig, Partitioner, StageCost};
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a synthetic backbone whose per-layer times follow `weights`.
fn db_for(weights: &[f64]) -> ProfileDb {
    let mut model = zoo::synthetic_model(weights.len(), 10.0, &[1.0], false);
    {
        let bb = model
            .components
            .iter_mut()
            .find(|c| c.is_trainable())
            .unwrap();
        for (l, &w) in bb.layers.iter_mut().zip(weights) {
            l.flops_per_sample *= w;
        }
    }
    let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 16);
    db
}

fn backbone(db: &ProfileDb) -> ComponentId {
    db.model().backbones().next().unwrap().0
}

/// Brute-force minimum of the Eqn. (2) objective over all 2-stage splits.
fn brute_force_two_stages(
    db: &ProfileDb,
    cluster: &ClusterSpec,
    micro: f64,
    m_count: usize,
) -> f64 {
    let layout = DataParallelLayout::new(cluster, 2).unwrap();
    let cost = StageCost::new(db, cluster, &layout);
    let bb = backbone(db);
    let layers = db.model().component(bb).num_layers();
    let coeff = (m_count + 2 * 2 - 2) as f64;
    let mut best = f64::INFINITY;
    for cut in 1..layers {
        let t_a = cost.stage_terms(bb, 0..cut, 1, &[0], micro, 0.0, 1.0);
        let t_b = cost.stage_terms(bb, cut..layers, 1, &[1], micro, 0.0, 1.0);
        let w = t_a.t0.max(t_b.t0);
        let y = t_a.sync_gap.max(t_b.sync_gap);
        best = best.min(coeff * w + y);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The DP matches exhaustive search for 2 stages on 2 devices.
    #[test]
    fn dp_matches_brute_force_two_stages(
        weights in proptest::collection::vec(0.2f64..5.0, 4..10),
        m_count in 1usize..5,
    ) {
        let db = db_for(&weights);
        let cluster = ClusterSpec::single_node(2);
        let layout = DataParallelLayout::new(&cluster, 2).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let cfg = PartitionConfig::new(2, m_count, 16.0);
        let plan = p.partition_single(backbone(&db), &cfg).unwrap();
        let brute = brute_force_two_stages(&db, &cluster, cfg.micro_batch(), m_count);
        prop_assert!(
            (plan.t_max - brute).abs() <= 1e-9 * brute.max(1.0),
            "dp {} vs brute {}",
            plan.t_max,
            brute
        );
    }

    /// Plans always cover the layer chain exactly and use every device.
    #[test]
    fn plans_always_cover(
        weights in proptest::collection::vec(0.2f64..5.0, 4..12),
        stages in 1usize..5,
        m_count in 1usize..4,
    ) {
        let db = db_for(&weights);
        let layers = weights.len();
        if stages > layers { return Ok(()); }
        let cluster = ClusterSpec::single_node(stages * 2);
        let layout = DataParallelLayout::new(&cluster, stages * 2).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let cfg = PartitionConfig::new(stages, m_count, 32.0);
        let plan = p.partition_single(backbone(&db), &cfg).unwrap();
        prop_assert!(plan.covers(layers));
        prop_assert_eq!(plan.devices_used(), stages * 2);
        prop_assert!(plan.stages.iter().all(|s| s.replication == 2));
        prop_assert!(plan.t_max.is_finite() && plan.t_max > 0.0);
    }

    /// T0 is a true upper bound on every stage's compute time.
    #[test]
    fn t0_dominates_every_stage(
        weights in proptest::collection::vec(0.2f64..5.0, 6..12),
        stages in 2usize..4,
    ) {
        let db = db_for(&weights);
        if stages > weights.len() { return Ok(()); }
        let cluster = ClusterSpec::single_node(stages);
        let layout = DataParallelLayout::new(&cluster, stages).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let cfg = PartitionConfig::new(stages, 2, 16.0);
        let plan = p.partition_single(backbone(&db), &cfg).unwrap();
        let bb = backbone(&db);
        for st in &plan.stages {
            let local = st.local_batch(plan.micro_batch);
            let compute = db.fwd_time_range(bb, st.layers.clone(), local)
                + db.bwd_time_range(bb, st.layers.clone(), local);
            prop_assert!(compute <= plan.t0 + 1e-12, "stage {:?} compute {compute} > t0 {}", st.layers, plan.t0);
        }
    }

    /// Scaling all layer times scales T_max by the same factor (the DP is
    /// scale-equivariant given zero overheads and no comm binding).
    #[test]
    fn dp_is_monotone_in_cost_scale(
        weights in proptest::collection::vec(0.5f64..2.0, 4..8),
    ) {
        let db1 = db_for(&weights);
        let double: Vec<f64> = weights.iter().map(|w| w * 2.0).collect();
        let db2 = db_for(&double);
        let cluster = ClusterSpec::single_node(2);
        let layout = DataParallelLayout::new(&cluster, 2).unwrap();
        let cfg = PartitionConfig::new(2, 2, 16.0);
        let t1 = Partitioner::new(&db1, &cluster, &layout)
            .partition_single(backbone(&db1), &cfg).unwrap().t_max;
        let t2 = Partitioner::new(&db2, &cluster, &layout)
            .partition_single(backbone(&db2), &cfg).unwrap().t_max;
        prop_assert!(t2 > t1);
    }
}

/// The tiny-model Arc keeps the ProfileDb constructor honest (regression
/// for the Arc-based API).
#[test]
fn profile_db_from_arc() {
    let model = Arc::new(zoo::tiny_model());
    let db = ProfileDb::new(model, DeviceModel::a100_like());
    assert!(db.fwd_time(ComponentId(1), dpipe_model::LayerId(0), 4.0) > 0.0);
}
