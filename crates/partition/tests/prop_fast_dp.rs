//! Property tests for the partitioning fast path: prefix-table exactness
//! and selection-preserving pruning across randomised models and configs.

use dpipe_cluster::{ClusterSpec, DataParallelLayout, DeviceClass};
use dpipe_model::zoo;
use dpipe_partition::{DpStats, PartitionConfig, Partitioner};
use dpipe_profile::{CostPrefix, DeviceModel, NoiseConfig, ProfileDb, Profiler};
use proptest::prelude::*;

/// A randomised single-backbone model: layer count, per-layer weight skew
/// and self-conditioning toggle.
fn model_strategy() -> impl Strategy<Value = (usize, f64, bool)> {
    (4usize..20, 2.0f64..40.0, any::<bool>())
}

fn profiled(
    layers: usize,
    ms: f64,
    self_cond: bool,
    devices: usize,
    batch: u32,
) -> (ProfileDb, ClusterSpec) {
    let model = zoo::synthetic_model(layers, ms, &[1.0, 2.0], self_cond);
    let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
    (db, ClusterSpec::single_node(devices))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `CostPrefix` interval queries are bit-identical to naive `ProfileDb`
    /// summation for every interval, on a noisy record-free database.
    #[test]
    fn cost_prefix_equals_naive_summation(
        spec in model_strategy(),
        batch in 1u32..96,
        sigma in 0.0f64..0.08,
    ) {
        let (layers, ms, self_cond) = spec;
        let model = zoo::synthetic_model(layers, ms, &[1.0], self_cond);
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
        let db = db.with_noise(NoiseConfig { sigma, seed: 7 });
        let bb = db.model().backbones().next().unwrap().0;
        let mut prefix = CostPrefix::new(&db, bb);
        let b = batch as f64 / 3.0; // fractional batches included
        prefix.ensure_batch(&db, b);
        let n = prefix.num_layers();
        for l in 0..n {
            for l2 in l..=n {
                prop_assert_eq!(
                    prefix.fwd_range(&(l..l2), b),
                    db.fwd_time_range(bb, l..l2, b)
                );
                prop_assert_eq!(
                    prefix.bwd_range(&(l..l2), b),
                    db.bwd_time_range(bb, l..l2, b)
                );
                prop_assert_eq!(
                    prefix.grad_bytes_range(&(l..l2)),
                    db.grad_bytes_range(bb, l..l2)
                );
            }
        }
        for l in 0..n {
            prop_assert_eq!(
                prefix.boundary_bytes(l, b),
                db.boundary_bytes(bb, dpipe_model::LayerId(l), b)
            );
        }
    }

    /// The pruned, prefix-backed, parent-pointer DP selects exactly the
    /// partition the unpruned naive reference selects — uniform configs.
    #[test]
    fn pruned_dp_matches_reference_uniform(
        spec in model_strategy(),
        stages_pow in 0u32..4,
        micro in 1usize..9,
        batch in 8u32..256,
    ) {
        let (layers, ms, self_cond) = spec;
        let devices = 8usize;
        let stages = 1usize << stages_pow; // 1, 2, 4, 8 all divide 8
        prop_assume!(stages <= layers);
        let (db, cluster) = profiled(layers, ms, self_cond, devices, batch);
        let layout = DataParallelLayout::new(&cluster, devices).unwrap();
        let part = Partitioner::new(&db, &cluster, &layout);
        let bb = db.model().backbones().next().unwrap().0;
        let cfg = PartitionConfig::new(stages, micro, batch as f64);
        let fast = part.partition_single(bb, &cfg).unwrap();
        let reference = part.partition_single_reference(bb, &cfg).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Same, over the full non-uniform (layers × devices) state grid.
    #[test]
    fn pruned_dp_matches_reference_nonuniform(
        spec in model_strategy(),
        devices in 2usize..7,
        stages in 1usize..5,
        batch in 8u32..128,
    ) {
        let (layers, ms, self_cond) = spec;
        prop_assume!(stages <= layers && stages <= devices);
        let (db, cluster) = profiled(layers, ms, self_cond, devices, batch);
        let layout = DataParallelLayout::new(&cluster, devices).unwrap();
        let part = Partitioner::new(&db, &cluster, &layout);
        let bb = db.model().backbones().next().unwrap().0;
        let cfg = PartitionConfig::new(stages, 2, batch as f64).with_nonuniform();
        let fast = part.partition_single(bb, &cfg).unwrap();
        let reference = part.partition_single_reference(bb, &cfg).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Pruning only ever discards candidates — and never the winner: the
    /// prune counter stays within the candidate count and the bound's
    /// effect is invisible in the output (already asserted above); here we
    /// additionally pin the stats invariants.
    #[test]
    fn prune_counters_are_consistent(
        spec in model_strategy(),
        batch in 8u32..256,
    ) {
        let (layers, ms, self_cond) = spec;
        prop_assume!(layers >= 4);
        let (db, cluster) = profiled(layers, ms, self_cond, 8, batch);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let part = Partitioner::new(&db, &cluster, &layout);
        let bb = db.model().backbones().next().unwrap().0;
        let cfg = PartitionConfig::new(4, 4, batch as f64);
        let prefixes = part.build_prefixes(bb, &cfg);
        let mut stats = DpStats::default();
        let plan = part.partition_single_with(bb, &cfg, &prefixes, &mut stats).unwrap();
        prop_assert!(plan.covers(layers));
        prop_assert!(stats.candidates > 0);
        prop_assert!(stats.pruned <= stats.candidates);
        prop_assert!((0.0..=1.0).contains(&stats.prune_rate()));
    }

    /// Heterogeneous clusters: the pruned, prefix-backed DP with per-class
    /// cost tables selects exactly the partition the naive reference
    /// (class-dispatching `stage_terms`) selects, on a mixed a100 + h100
    /// two-machine cluster across random models and configs.
    #[test]
    fn pruned_dp_matches_reference_on_mixed_cluster(
        spec in model_strategy(),
        stages_pow in 0u32..4,
        micro in 1usize..6,
        batch in 8u32..192,
        fast_first in any::<bool>(),
    ) {
        let (layers, ms, self_cond) = spec;
        let stages = 1usize << stages_pow; // divides the 8-wide group
        prop_assume!(stages <= layers);
        let classes = if fast_first {
            [(DeviceClass::h100(), 1usize), (DeviceClass::a100(), 1)]
        } else {
            [(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]
        };
        let mut cluster = ClusterSpec::mixed(&classes);
        cluster.devices_per_machine = 4; // 8 GPUs total, classes split 4/4
        let model = zoo::synthetic_model(layers, ms, &[1.0, 2.0], self_cond);
        let profiler = Profiler::new(DeviceModel::a100_like());
        let scales = cluster.class_map().compute_scales();
        let (dbs, _) = profiler.profile_classes(&model, batch, &scales);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let part = Partitioner::new(&dbs[0], &cluster, &layout).with_class_dbs(&dbs);
        let bb = dbs[0].model().backbones().next().unwrap().0;
        let cfg = PartitionConfig::new(stages, micro, batch as f64);
        let fast = part.partition_single(bb, &cfg).unwrap();
        let reference = part.partition_single_reference(bb, &cfg).unwrap();
        prop_assert_eq!(fast, reference);
    }
}

/// Bidirectional fast path vs reference on the CDM zoo models (fixed cases
/// rather than random models: two-backbone synthesis isn't randomised yet).
#[test]
fn bidirectional_fast_matches_reference_on_zoo() {
    for (model, batch) in [(zoo::cdm_lsun(), 128u32), (zoo::cdm_imagenet(), 64)] {
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        let cluster = ClusterSpec::single_node(8);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let part = Partitioner::new(&db, &cluster, &layout);
        let mut bbs = db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        for (s, m) in [(2usize, 2usize), (4, 1), (8, 4)] {
            let cfg = PartitionConfig::new(s, m, batch as f64);
            let fast = part.partition_bidirectional(b0, b1, &cfg).unwrap();
            let reference = part
                .partition_bidirectional_reference(b0, b1, &cfg)
                .unwrap();
            assert_eq!(fast, reference, "{} S={s} M={m}", db.model().name);
        }
    }
}
