//! Property tests for the bidirectional (two-backbone) DP.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::{zoo, ComponentId, ModelSpec};
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};
use proptest::prelude::*;

/// Two synthetic backbones with the given per-layer weight profiles.
fn two_backbone_model(down: &[f64], up: &[f64]) -> ModelSpec {
    use dpipe_model::{ModelSpecBuilder, Role};
    let mut b = ModelSpecBuilder::new("two-bb");
    let mk = |name: &str, weights: &[f64]| {
        let mut c = zoo::synthetic_backbone(name, weights.len(), 1_000_000, 10.0);
        for (l, &w) in c.layers.iter_mut().zip(weights) {
            l.flops_per_sample *= w;
        }
        c
    };
    let _ = b.push_component({
        let mut c = mk("down", down);
        c.role = Role::Backbone;
        c
    });
    let _ = b.push_component({
        let mut c = mk("up", up);
        c.role = Role::Backbone;
        c
    });
    b.build()
}

fn db_for(model: &ModelSpec) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like()).profile(model, 32).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bidirectional plans cover both backbones, pair stages on shared
    /// offsets, and place up's stage 0 at the chain end.
    #[test]
    fn bidirectional_structure_invariants(
        down in proptest::collection::vec(0.3f64..3.0, 4..10),
        up in proptest::collection::vec(0.3f64..3.0, 4..10),
        stages in 2usize..4,
    ) {
        prop_assume!(stages <= down.len().min(up.len()));
        let model = two_backbone_model(&down, &up);
        let db = db_for(&model);
        let cluster = ClusterSpec::single_node(stages);
        let layout = DataParallelLayout::new(&cluster, stages).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let plan = p
            .partition_bidirectional(ComponentId(0), ComponentId(1), &PartitionConfig::new(stages, 2, 32.0))
            .unwrap();

        // Coverage.
        prop_assert!(plan.down.covers(down.len()));
        let mut up_ranges: Vec<_> = plan.up.stages.iter().map(|s| s.layers.clone()).collect();
        up_ranges.sort_by_key(|r| r.start);
        let mut next = 0;
        for r in up_ranges {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, up.len());

        // Offset pairing: stage i of down and stage (S-1-i) of up share a
        // device block.
        for (i, d) in plan.down.stages.iter().enumerate() {
            let u = &plan.up.stages[stages - 1 - i];
            prop_assert_eq!(&d.device_offsets, &u.device_offsets);
        }
        // Up's pipeline stage 0 (its first layers) sits at the chain end.
        prop_assert_eq!(plan.up.stages[0].layers.start, 0);
        let max_off = plan.up.stages.iter().map(|s| s.device_offsets[0]).max().unwrap();
        prop_assert_eq!(plan.up.stages[0].device_offsets[0], max_off);
        prop_assert!(plan.t_max.is_finite() && plan.t_max > 0.0);
    }

    /// Swapping the two backbones cannot change the bound by more than the
    /// comm asymmetry allows (the construction is near-symmetric).
    #[test]
    fn swap_symmetry(
        down in proptest::collection::vec(0.5f64..2.0, 4..8),
        up in proptest::collection::vec(0.5f64..2.0, 4..8),
    ) {
        let stages = 2usize;
        let model_a = two_backbone_model(&down, &up);
        let model_b = two_backbone_model(&up, &down);
        let (db_a, db_b) = (db_for(&model_a), db_for(&model_b));
        let cluster = ClusterSpec::single_node(stages);
        let layout = DataParallelLayout::new(&cluster, stages).unwrap();
        let cfg = PartitionConfig::new(stages, 2, 32.0);
        let ta = Partitioner::new(&db_a, &cluster, &layout)
            .partition_bidirectional(ComponentId(0), ComponentId(1), &cfg)
            .unwrap()
            .t_max;
        let tb = Partitioner::new(&db_b, &cluster, &layout)
            .partition_bidirectional(ComponentId(0), ComponentId(1), &cfg)
            .unwrap()
            .t_max;
        prop_assert!((ta - tb).abs() < 0.05 * ta.max(tb), "{ta} vs {tb}");
    }
}
