//! Property tests for the communication model and layouts.

use dpipe_cluster::{ClusterSpec, DataParallelLayout, DeviceId};
use proptest::prelude::*;

proptest! {
    // Pinned case count for a fast, deterministic CI run.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All-reduce time is monotone in payload size.
    #[test]
    fn allreduce_monotone_in_bytes(
        machines in 1usize..8,
        a in 0u64..(1 << 30),
        b in 0u64..(1 << 30),
    ) {
        let m = ClusterSpec::p4de(machines).comm_model();
        let devices: Vec<DeviceId> = (0..machines * 8).map(DeviceId).collect();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.allreduce_time(lo, &devices) <= m.allreduce_time(hi, &devices) + 1e-15);
    }

    /// All-reduce over more machines is never faster (same payload).
    #[test]
    fn allreduce_monotone_in_nodes(bytes in 1u64..(1 << 30)) {
        let cluster = ClusterSpec::p4de(8);
        let m = cluster.comm_model();
        let mut prev = 0.0;
        for machines in 1..=8usize {
            let devices: Vec<DeviceId> = (0..machines * 8).map(DeviceId).collect();
            let t = m.allreduce_time(bytes, &devices);
            prop_assert!(t + 1e-15 >= prev, "machines {machines}: {t} < {prev}");
            prev = t;
        }
    }

    /// p2p cost is symmetric and zero only for self-transfers.
    #[test]
    fn p2p_symmetric(machines in 1usize..5, x in 0usize..16, y in 0usize..16, bytes in 1u64..(1 << 24)) {
        let world = machines * 8;
        let (x, y) = (x % world, y % world);
        let m = ClusterSpec::p4de(machines).comm_model();
        let t_xy = m.p2p_time(bytes, DeviceId(x), DeviceId(y));
        let t_yx = m.p2p_time(bytes, DeviceId(y), DeviceId(x));
        prop_assert!((t_xy - t_yx).abs() < 1e-15);
        if x == y {
            prop_assert_eq!(t_xy, 0.0);
        } else {
            prop_assert!(t_xy > 0.0);
        }
    }

    /// Every valid layout partitions the world exactly, with contiguous
    /// groups and consistent group lookup.
    #[test]
    fn layouts_partition_the_world(machines in 1usize..5, group_pow in 0u32..7) {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        let d = (1usize << group_pow).min(world);
        prop_assume!(world.is_multiple_of(d));
        let layout = DataParallelLayout::new(&cluster, d).unwrap();
        let mut seen = vec![false; world];
        for g in &layout.groups {
            prop_assert_eq!(g.size(), d);
            for (i, dev) in g.devices.iter().enumerate() {
                prop_assert!(!seen[dev.rank()]);
                seen[dev.rank()] = true;
                if i > 0 {
                    prop_assert_eq!(dev.rank(), g.devices[i - 1].rank() + 1);
                }
                prop_assert_eq!(layout.group_of(*dev).unwrap().index, g.index);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Effective all-reduce rates derived from the α-β model reproduce the
    /// raw time: t(bytes) ≈ latency + bytes / bandwidth.
    #[test]
    fn effective_rates_reconstruct_time(machines in 1usize..8, kib in 1u64..(1 << 20)) {
        let bytes = kib * 1024;
        let m = ClusterSpec::p4de(machines).comm_model();
        let devices: Vec<DeviceId> = (0..machines * 8).map(DeviceId).collect();
        let eff = m.allreduce_effective(&devices);
        let direct = m.allreduce_time(bytes, &devices);
        let reconstructed = eff.latency + bytes as f64 / eff.bandwidth;
        prop_assert!(
            (direct - reconstructed).abs() <= 1e-6 * direct.max(1e-9) + 1e-12,
            "direct {direct} vs reconstructed {reconstructed}"
        );
    }
}
