//! Pipeline-parallel groups and mixed data/pipeline parallel layout.

use crate::device::DeviceId;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// A pipeline-parallel group: the minimum set of devices over which a
/// complete set of pipeline communications is performed (paper §3.1,
/// footnote 1). Devices are a contiguous rank chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineGroup {
    /// Group index (0-based).
    pub index: usize,
    /// Devices in chain order (stage 0's devices come first).
    pub devices: Vec<DeviceId>,
}

impl PipelineGroup {
    /// Number of devices in the group (the paper's `D`).
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// The sub-chain of the last `r` devices — where the DP places the
    /// stage currently being decided (paper §4.1).
    pub fn last_devices(&self, r: usize) -> &[DeviceId] {
        &self.devices[self.devices.len() - r..]
    }
}

/// Mixed data + pipeline parallelism (paper Fig. 8): the world is divided
/// into `world/D` pipeline groups; groups replicate the same model stages
/// and synchronise gradients data-parallel across groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataParallelLayout {
    /// Pipeline-parallel group size `D`.
    pub group_size: usize,
    /// The pipeline groups, in rank order.
    pub groups: Vec<PipelineGroup>,
}

impl DataParallelLayout {
    /// Splits `cluster` into pipeline groups of size `group_size`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `group_size` is zero or does not divide the world
    /// size.
    pub fn new(cluster: &ClusterSpec, group_size: usize) -> Option<Self> {
        let world = cluster.world_size();
        if group_size == 0 || !world.is_multiple_of(group_size) {
            return None;
        }
        let groups = (0..world / group_size)
            .map(|g| PipelineGroup {
                index: g,
                devices: (g * group_size..(g + 1) * group_size)
                    .map(DeviceId)
                    .collect(),
            })
            .collect();
        Some(DataParallelLayout { group_size, groups })
    }

    /// Data-parallel degree (`world / D`).
    pub fn data_parallel_degree(&self) -> usize {
        self.groups.len()
    }

    /// The group containing a device.
    pub fn group_of(&self, d: DeviceId) -> Option<&PipelineGroup> {
        self.groups.get(d.rank() / self.group_size)
    }

    /// Devices at the same position in every group — the set over which one
    /// stage replica's gradients are all-reduced when a stage occupies one
    /// device per group plus `r`-way replication inside the group.
    ///
    /// `offset` is the device's position within its group.
    pub fn cross_group_peers(&self, offset: usize) -> Vec<DeviceId> {
        self.groups
            .iter()
            .filter_map(|g| g.devices.get(offset).copied())
            .collect()
    }

    /// All group sizes that evenly divide the world size (the candidate `D`
    /// values enumerated by the hyper-parameter search).
    pub fn candidate_group_sizes(cluster: &ClusterSpec) -> Vec<usize> {
        let world = cluster.world_size();
        (1..=world).filter(|d| world.is_multiple_of(*d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_splits_contiguously() {
        let c = ClusterSpec::p4de(2); // 16 devices
        let l = DataParallelLayout::new(&c, 4).unwrap();
        assert_eq!(l.data_parallel_degree(), 4);
        assert_eq!(
            l.groups[1].devices,
            vec![DeviceId(4), DeviceId(5), DeviceId(6), DeviceId(7)]
        );
        assert_eq!(l.group_of(DeviceId(9)).unwrap().index, 2);
    }

    #[test]
    fn layout_rejects_bad_group_size() {
        let c = ClusterSpec::p4de(1); // 8 devices
        assert!(DataParallelLayout::new(&c, 3).is_none());
        assert!(DataParallelLayout::new(&c, 0).is_none());
        assert!(DataParallelLayout::new(&c, 16).is_none());
    }

    #[test]
    fn cross_group_peers_align_by_offset() {
        let c = ClusterSpec::p4de(1);
        let l = DataParallelLayout::new(&c, 4).unwrap();
        assert_eq!(l.cross_group_peers(0), vec![DeviceId(0), DeviceId(4)]);
        assert_eq!(l.cross_group_peers(3), vec![DeviceId(3), DeviceId(7)]);
    }

    #[test]
    fn candidate_group_sizes_are_divisors() {
        let c = ClusterSpec::p4de(1);
        assert_eq!(
            DataParallelLayout::candidate_group_sizes(&c),
            vec![1, 2, 4, 8]
        );
    }

    #[test]
    fn last_devices_returns_suffix() {
        let g = PipelineGroup {
            index: 0,
            devices: (0..4).map(DeviceId).collect(),
        };
        assert_eq!(g.last_devices(2), &[DeviceId(2), DeviceId(3)]);
        assert_eq!(g.size(), 4);
    }
}
