//! α–β communication cost model.

use crate::device::DeviceId;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency pair for one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Achievable bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkParams {
    /// Time to move `bytes` over this link once: `latency + bytes/bandwidth`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Communication cost model over a [`ClusterSpec`].
///
/// Provides the `R_x` / `L_x` quantities of the paper's Table 4 for
/// point-to-point (`p2p`) transfers between pipeline stages and ring /
/// hierarchical all-reduce (`ar`) for gradient synchronisation.
///
/// Device classes scale the *intra-node* fabric: a machine whose class has
/// `link_scale != 1.0` multiplies the NVSwitch-class bandwidth by that
/// factor for p2p transfers within it and for the intra-node leg of
/// collectives it participates in (the slowest spanned machine governs a
/// collective). Inter-node links are a property of the network fabric, not
/// the GPU generation, and stay class-independent. Homogeneous clusters
/// scale by exactly 1.0, which is bit-identical to the unscaled model.
#[derive(Debug, Clone)]
pub struct CommModel {
    cluster: ClusterSpec,
    /// Cached per-machine intra-link scales (all 1.0 when homogeneous).
    machine_link_scales: Vec<f64>,
}

impl CommModel {
    /// Creates a model for the given cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        let machine_link_scales = cluster.machine_link_scales();
        CommModel {
            cluster,
            machine_link_scales,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Intra-node link scale of the machine hosting `d` (1.0 when the
    /// cluster is homogeneous or the rank is out of range).
    fn link_scale_of(&self, d: DeviceId) -> f64 {
        let machine = d.rank() / self.cluster.devices_per_machine.max(1);
        self.machine_link_scales
            .get(machine)
            .copied()
            .unwrap_or(1.0)
    }

    /// The slowest intra-node link scale among the machines spanned by the
    /// given devices (1.0 for an empty set).
    pub fn min_intra_link_scale(&self, devices: &[DeviceId]) -> f64 {
        let min = devices
            .iter()
            .map(|&d| self.link_scale_of(d))
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            1.0
        }
    }

    /// Link parameters between two specific devices. Same-machine transfers
    /// run on that machine's (class-scaled) intra-node fabric.
    pub fn p2p_link(&self, a: DeviceId, b: DeviceId) -> LinkParams {
        if self.cluster.same_machine(a, b) {
            LinkParams {
                bandwidth: self.cluster.intra_link.bandwidth * self.link_scale_of(a),
                latency: self.cluster.intra_link.latency,
            }
        } else {
            self.cluster.inter_link
        }
    }

    /// Point-to-point transfer time of `bytes` between two devices.
    pub fn p2p_time(&self, bytes: u64, a: DeviceId, b: DeviceId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.p2p_link(a, b).transfer_time(bytes)
    }

    /// Effective inter-node collective bandwidth for a collective spanning
    /// `nodes` machines: the full EFA bandwidth within a rack pair, divided
    /// by the spine oversubscription beyond that.
    pub fn inter_collective_bandwidth(&self, nodes: usize) -> f64 {
        if nodes <= 2 {
            self.cluster.inter_link.bandwidth
        } else {
            self.cluster.inter_link.bandwidth / self.cluster.spine_oversubscription
        }
    }

    /// All-reduce time of `bytes` across the given devices, using a
    /// hierarchical (intra-node ring, then inter-node ring) schedule. The
    /// intra-node leg runs at the slowest spanned machine's class-scaled
    /// bandwidth (exactly the reference bandwidth when homogeneous).
    ///
    /// Degenerates to a plain intra-node ring when all devices share a
    /// machine and to zero for groups of one.
    pub fn allreduce_time(&self, bytes: u64, devices: &[DeviceId]) -> f64 {
        let g = devices.len();
        if g <= 1 {
            return 0.0;
        }
        let nodes = self.cluster.machines_spanned(devices);
        self.allreduce_time_shape_scaled(bytes, g, nodes, self.min_intra_link_scale(devices))
    }

    /// [`CommModel::allreduce_time`] for a group whose *shape* — device
    /// count and machines spanned — is already known, assuming
    /// reference-class intra-node links. The arithmetic is identical to
    /// [`CommModel::allreduce_time`] on a homogeneous cluster by
    /// construction.
    pub fn allreduce_time_shape(&self, bytes: u64, group: usize, nodes: usize) -> f64 {
        self.allreduce_time_shape_scaled(bytes, group, nodes, 1.0)
    }

    /// [`CommModel::allreduce_time_shape`] with an explicit intra-node link
    /// scale (the slowest spanned machine's class scale, cached by the
    /// partitioning hot path alongside the group shape). A scale of exactly
    /// 1.0 is bit-identical to the unscaled form.
    pub fn allreduce_time_shape_scaled(
        &self,
        bytes: u64,
        group: usize,
        nodes: usize,
        intra_scale: f64,
    ) -> f64 {
        let g = group;
        if g <= 1 {
            return 0.0;
        }
        let bytes_f = bytes as f64;
        // Intra-node ring over the local group.
        let local = g.div_ceil(nodes); // devices per node (ceil)
        let intra = if local > 1 {
            2.0 * (local as f64 - 1.0) / local as f64 * bytes_f
                / (self.cluster.intra_link.bandwidth * intra_scale)
                + 2.0 * (local as f64 - 1.0) * self.cluster.intra_link.latency
        } else {
            0.0
        };
        // Inter-node ring over node leaders.
        let inter = if nodes > 1 {
            let bw = self.inter_collective_bandwidth(nodes);
            2.0 * (nodes as f64 - 1.0) / nodes as f64 * bytes_f / bw
                + 2.0 * (nodes as f64 - 1.0) * self.cluster.inter_link.latency
        } else {
            0.0
        };
        intra + inter
    }

    /// Bandwidth/latency summary used by the partitioner for a *stage*
    /// replicated on `devices`: the all-reduce is timed via
    /// [`CommModel::allreduce_time`]; this helper exposes the equivalent
    /// effective rate for Eqn. (4)'s `R_ar`/`L_ar` form.
    pub fn allreduce_effective(&self, devices: &[DeviceId]) -> LinkParams {
        let g = devices.len();
        if g <= 1 {
            return LinkParams {
                bandwidth: f64::INFINITY,
                latency: 0.0,
            };
        }
        // Derive from a reference 1 GiB transfer.
        let reference: u64 = 1 << 30;
        let t = self.allreduce_time(reference, devices);
        let lat = self.allreduce_time(0, devices);
        LinkParams {
            bandwidth: reference as f64 / (t - lat).max(1e-12),
            latency: lat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(machines: usize) -> CommModel {
        ClusterSpec::p4de(machines).comm_model()
    }

    #[test]
    fn p2p_zero_for_self() {
        let m = model(1);
        assert_eq!(m.p2p_time(1 << 20, DeviceId(0), DeviceId(0)), 0.0);
    }

    #[test]
    fn p2p_inter_node_slower() {
        let m = model(2);
        let intra = m.p2p_time(1 << 30, DeviceId(0), DeviceId(1));
        let inter = m.p2p_time(1 << 30, DeviceId(0), DeviceId(8));
        assert!(inter > 3.0 * intra);
    }

    #[test]
    fn allreduce_single_device_is_free() {
        let m = model(1);
        assert_eq!(m.allreduce_time(1 << 30, &[DeviceId(0)]), 0.0);
    }

    #[test]
    fn allreduce_grows_with_group_size() {
        let m = model(8);
        let bytes = 3_550_000_000u64; // SD v2.1 gradient volume
        let g8: Vec<DeviceId> = (0..8).map(DeviceId).collect();
        let g16: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        let g64: Vec<DeviceId> = (0..64).map(DeviceId).collect();
        let t8 = m.allreduce_time(bytes, &g8);
        let t16 = m.allreduce_time(bytes, &g16);
        let t64 = m.allreduce_time(bytes, &g64);
        assert!(t8 < t16 && t16 < t64);
        // Table 2 calibration: ~45 ms intra-node, ~500 ms at 64 GPUs.
        assert!((0.030..0.070).contains(&t8), "t8={t8}");
        assert!((0.40..0.65).contains(&t64), "t64={t64}");
    }

    #[test]
    fn allreduce_shape_form_is_bit_identical() {
        let m = model(4);
        for count in [1usize, 2, 8, 12, 24] {
            let devs: Vec<DeviceId> = (0..count).map(DeviceId).collect();
            let nodes = m.cluster().machines_spanned(&devs);
            for bytes in [0u64, 1 << 16, 3_550_000_000] {
                assert_eq!(
                    m.allreduce_time(bytes, &devs),
                    m.allreduce_time_shape(bytes, count, nodes),
                    "count={count} bytes={bytes}"
                );
            }
        }
    }

    #[test]
    fn spine_oversubscription_kicks_in_past_two_nodes() {
        let m = model(8);
        assert_eq!(m.inter_collective_bandwidth(2), 24.0e9);
        assert!(m.inter_collective_bandwidth(4) < 15.0e9);
    }

    #[test]
    fn allreduce_effective_rates_are_sane() {
        let m = model(2);
        let devs: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        let eff = m.allreduce_effective(&devs);
        assert!(eff.bandwidth > 1e9 && eff.bandwidth < 300e9);
        assert!(eff.latency >= 0.0);
        let single = m.allreduce_effective(&[DeviceId(0)]);
        assert!(single.bandwidth.is_infinite());
    }

    #[test]
    fn shape_scaled_with_unit_scale_is_bit_identical() {
        let m = model(4);
        for (g, nodes) in [(8usize, 1usize), (16, 2), (24, 3)] {
            for bytes in [0u64, 1 << 20, 3_550_000_000] {
                assert_eq!(
                    m.allreduce_time_shape(bytes, g, nodes),
                    m.allreduce_time_shape_scaled(bytes, g, nodes, 1.0),
                );
            }
        }
    }

    #[test]
    fn slow_class_machines_slow_collectives_and_p2p() {
        use crate::class::DeviceClass;
        let homo = ClusterSpec::p4de(2).comm_model();
        let mixed =
            ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::a10g(), 1)]).comm_model();
        let devs: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        let bytes = 1u64 << 30;
        // The a10g machine's PCIe-class fabric throttles the intra leg.
        assert!(mixed.allreduce_time(bytes, &devs) > homo.allreduce_time(bytes, &devs));
        assert_eq!(mixed.min_intra_link_scale(&devs[..8]), 1.0);
        assert!(mixed.min_intra_link_scale(&devs) < 1.0);
        // p2p inside the a10g box is slower than inside the a100 box.
        let fast = mixed.p2p_time(bytes, DeviceId(0), DeviceId(1));
        let slow = mixed.p2p_time(bytes, DeviceId(8), DeviceId(9));
        assert!(slow > fast);
        // A fast-fabric class speeds collectives up.
        let h100 = ClusterSpec::mixed(&[(DeviceClass::h100(), 2)]).comm_model();
        let g16: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        assert!(h100.allreduce_time(bytes, &g16) < homo.allreduce_time(bytes, &g16));
    }

    #[test]
    fn transfer_time_is_alpha_beta() {
        let l = LinkParams {
            bandwidth: 1e9,
            latency: 1e-6,
        };
        let t = l.transfer_time(1_000_000_000);
        assert!((t - 1.000001).abs() < 1e-9);
    }
}
