//! Device and machine identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Global rank of a device in the cluster (0-based, row-major over
/// machines: machine `m` hosts ranks `m*dpm .. (m+1)*dpm`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub usize);

/// Index of a machine (node) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MachineId(pub usize);

impl DeviceId {
    /// Returns the global rank.
    pub fn rank(self) -> usize {
        self.0
    }
}

impl MachineId {
    /// Returns the machine index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for DeviceId {
    fn from(r: usize) -> Self {
        DeviceId(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_rank() {
        assert_eq!(DeviceId(5).to_string(), "gpu5");
        assert_eq!(MachineId(2).to_string(), "node2");
        assert_eq!(DeviceId(5).rank(), 5);
        assert_eq!(MachineId(2).index(), 2);
    }

    #[test]
    fn ordering_by_rank() {
        assert!(DeviceId(0) < DeviceId(1));
    }
}
