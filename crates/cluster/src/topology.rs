//! Cluster shape and hardware parameters.

use crate::comm::{CommModel, LinkParams};
use crate::device::{DeviceId, MachineId};
use dpipe_stablehash::StableHasher;
use serde::{Deserialize, Serialize};

/// Description of a homogeneous GPU cluster.
///
/// Calibrated defaults model the paper's testbed: AWS p4de.24xlarge machines
/// with 8× A100-80GB, 600 GB/s NVSwitch intra-node and 400 Gb/s EFA
/// inter-node. Effective (achievable) bandwidths are lower than the marketing
/// peaks; the defaults are fit so the DDP synchronisation shares of Table 2
/// (≈5% at 8 GPUs growing to ≈40% at 64 GPUs) are reproduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of machines (nodes).
    pub machines: usize,
    /// Devices (GPUs) per machine.
    pub devices_per_machine: usize,
    /// Intra-node link (NVSwitch-class).
    pub intra_link: LinkParams,
    /// Inter-node link (EFA-class), full bandwidth within a rack pair.
    pub inter_link: LinkParams,
    /// Bandwidth divisor applied to inter-node collectives spanning more
    /// than two machines (spine oversubscription).
    pub spine_oversubscription: f64,
    /// Device memory in bytes (A100-80GB default).
    pub device_memory_bytes: u64,
}

impl ClusterSpec {
    /// A p4de.24xlarge-like cluster with `machines` nodes of 8 GPUs.
    pub fn p4de(machines: usize) -> Self {
        ClusterSpec {
            machines,
            devices_per_machine: 8,
            intra_link: LinkParams {
                bandwidth: 140.0e9, // effective NVSwitch collective bandwidth
                latency: 8.0e-6,
            },
            inter_link: LinkParams {
                bandwidth: 24.0e9, // 400 Gb/s EFA, effective collective rate
                latency: 30.0e-6,
            },
            spine_oversubscription: 1.84,
            device_memory_bytes: 80 * (1 << 30),
        }
    }

    /// A single-machine cluster with `devices` GPUs (useful for tests).
    pub fn single_node(devices: usize) -> Self {
        ClusterSpec {
            devices_per_machine: devices,
            ..ClusterSpec::p4de(1)
        }
    }

    /// Total number of devices.
    pub fn world_size(&self) -> usize {
        self.machines * self.devices_per_machine
    }

    /// All device ids in rank order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.world_size()).map(DeviceId)
    }

    /// Machine hosting a device.
    ///
    /// # Panics
    ///
    /// Panics if the device rank is out of range.
    pub fn machine_of(&self, d: DeviceId) -> MachineId {
        assert!(d.rank() < self.world_size(), "device {d} out of range");
        MachineId(d.rank() / self.devices_per_machine)
    }

    /// True if both devices are on the same machine.
    pub fn same_machine(&self, a: DeviceId, b: DeviceId) -> bool {
        self.machine_of(a) == self.machine_of(b)
    }

    /// Number of distinct machines spanned by the given devices.
    pub fn machines_spanned(&self, devices: &[DeviceId]) -> usize {
        let mut machines: Vec<usize> = devices
            .iter()
            .map(|&d| self.machine_of(d).index())
            .collect();
        machines.sort_unstable();
        machines.dedup();
        machines.len()
    }

    /// The communication cost model for this topology.
    pub fn comm_model(&self) -> CommModel {
        CommModel::new(self.clone())
    }

    /// Stable 64-bit content fingerprint of the cluster shape and link
    /// parameters.
    ///
    /// Structurally identical clusters fingerprint identically across
    /// processes; any planning-relevant edit (shape, bandwidth, latency,
    /// memory) changes the digest. `dpipe_serve` keys its plan cache on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dpipe_cluster::ClusterSpec");
        h.write_usize(self.machines);
        h.write_usize(self.devices_per_machine);
        for link in [&self.intra_link, &self.inter_link] {
            h.write_f64(link.bandwidth);
            h.write_f64(link.latency);
        }
        h.write_f64(self.spine_oversubscription);
        h.write_u64(self.device_memory_bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4de_shape() {
        let c = ClusterSpec::p4de(8);
        assert_eq!(c.world_size(), 64);
        assert_eq!(c.machine_of(DeviceId(0)), MachineId(0));
        assert_eq!(c.machine_of(DeviceId(63)), MachineId(7));
        assert!(c.same_machine(DeviceId(0), DeviceId(7)));
        assert!(!c.same_machine(DeviceId(7), DeviceId(8)));
    }

    #[test]
    fn machines_spanned_counts_unique() {
        let c = ClusterSpec::p4de(4);
        let devs: Vec<DeviceId> = vec![DeviceId(0), DeviceId(1), DeviceId(8), DeviceId(9)];
        assert_eq!(c.machines_spanned(&devs), 2);
        assert_eq!(c.machines_spanned(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn machine_of_panics_out_of_range() {
        ClusterSpec::p4de(1).machine_of(DeviceId(8));
    }

    #[test]
    fn single_node_helper() {
        let c = ClusterSpec::single_node(4);
        assert_eq!(c.world_size(), 4);
        assert_eq!(c.machines, 1);
    }

    #[test]
    fn fingerprint_is_deterministic_and_shape_sensitive() {
        let c = ClusterSpec::p4de(2);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        assert_ne!(c.fingerprint(), ClusterSpec::p4de(4).fingerprint());
        assert_ne!(
            ClusterSpec::single_node(8).fingerprint(),
            ClusterSpec::single_node(4).fingerprint()
        );
        let mut slow = ClusterSpec::p4de(2);
        slow.inter_link.bandwidth /= 2.0;
        assert_ne!(slow.fingerprint(), c.fingerprint());
    }

    #[test]
    fn devices_iterates_in_rank_order() {
        let c = ClusterSpec::single_node(3);
        let ranks: Vec<usize> = c.devices().map(|d| d.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }
}
