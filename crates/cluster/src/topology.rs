//! Cluster shape and hardware parameters.

use crate::class::{ClassMap, DeviceClass};
use crate::comm::{CommModel, LinkParams};
use crate::device::{DeviceId, MachineId};
use dpipe_stablehash::StableHasher;
use serde::{Deserialize, Serialize};

/// Description of a GPU cluster — homogeneous by default, optionally with a
/// per-machine [`DeviceClass`] for mixed-generation fleets.
///
/// Calibrated defaults model the paper's testbed: AWS p4de.24xlarge machines
/// with 8× A100-80GB, 600 GB/s NVSwitch intra-node and 400 Gb/s EFA
/// inter-node. Effective (achievable) bandwidths are lower than the marketing
/// peaks; the defaults are fit so the DDP synchronisation shares of Table 2
/// (≈5% at 8 GPUs growing to ≈40% at 64 GPUs) are reproduced.
///
/// When [`machine_classes`](ClusterSpec::machine_classes) is empty (every
/// constructor's default) all machines are the implicit reference class —
/// compute scale 1.0, memory [`device_memory_bytes`](ClusterSpec::device_memory_bytes),
/// link scale 1.0 — and every cost query is bit-identical to the original
/// homogeneous model. A non-empty vector assigns one class per machine; see
/// [`ClusterSpec::mixed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of machines (nodes).
    pub machines: usize,
    /// Devices (GPUs) per machine.
    pub devices_per_machine: usize,
    /// Intra-node link (NVSwitch-class) of the reference device class.
    pub intra_link: LinkParams,
    /// Inter-node link (EFA-class), full bandwidth within a rack pair.
    pub inter_link: LinkParams,
    /// Bandwidth divisor applied to inter-node collectives spanning more
    /// than two machines (spine oversubscription).
    pub spine_oversubscription: f64,
    /// Device memory in bytes (A100-80GB default) of the reference class.
    pub device_memory_bytes: u64,
    /// Optional per-machine device class. Empty = homogeneous reference
    /// class on every machine (the byte-identical legacy behaviour).
    pub machine_classes: Vec<DeviceClass>,
}

impl ClusterSpec {
    /// A p4de.24xlarge-like cluster with `machines` nodes of 8 GPUs.
    pub fn p4de(machines: usize) -> Self {
        ClusterSpec {
            machines,
            devices_per_machine: 8,
            intra_link: LinkParams {
                bandwidth: 140.0e9, // effective NVSwitch collective bandwidth
                latency: 8.0e-6,
            },
            inter_link: LinkParams {
                bandwidth: 24.0e9, // 400 Gb/s EFA, effective collective rate
                latency: 30.0e-6,
            },
            spine_oversubscription: 1.84,
            device_memory_bytes: 80 * (1 << 30),
            machine_classes: Vec::new(),
        }
    }

    /// A single-machine cluster with `devices` GPUs (useful for tests).
    pub fn single_node(devices: usize) -> Self {
        ClusterSpec {
            devices_per_machine: devices,
            ..ClusterSpec::p4de(1)
        }
    }

    /// A mixed-generation cluster: p4de-class links and node shape, with the
    /// given `(class, machine_count)` groups laid out in order. E.g.
    /// `mixed(&[(DeviceClass::a100(), 4), (DeviceClass::h100(), 4)])` is an
    /// 8-machine, 64-GPU fleet whose first 4 nodes are A100 boxes.
    pub fn mixed(groups: &[(DeviceClass, usize)]) -> Self {
        let machines: usize = groups.iter().map(|(_, n)| n).sum();
        let machine_classes = groups
            .iter()
            .flat_map(|(class, n)| std::iter::repeat_n(class.clone(), *n))
            .collect();
        ClusterSpec {
            machine_classes,
            ..ClusterSpec::p4de(machines.max(1))
        }
    }

    /// Assigns one [`DeviceClass`] per machine (the heterogeneous mode).
    /// The vector length should equal [`machines`](ClusterSpec::machines);
    /// planners reject mismatches via [`ClusterSpec::validate_classes`].
    pub fn with_machine_classes(mut self, classes: Vec<DeviceClass>) -> Self {
        self.machine_classes = classes;
        self
    }

    /// Checks the class assignment is usable: empty (homogeneous) or exactly
    /// one class per machine.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a length mismatch.
    pub fn validate_classes(&self) -> Result<(), String> {
        if self.machine_classes.is_empty() || self.machine_classes.len() == self.machines {
            Ok(())
        } else {
            Err(format!(
                "cluster has {} machines but {} device classes",
                self.machines,
                self.machine_classes.len()
            ))
        }
    }

    /// The implicit class of every machine when no explicit classes are set:
    /// compute scale 1.0, the cluster's default memory, link scale 1.0.
    pub fn default_class(&self) -> DeviceClass {
        DeviceClass {
            name: "a100".to_owned(),
            compute_scale: 1.0,
            memory_bytes: self.device_memory_bytes,
            link_scale: 1.0,
        }
    }

    /// True when machines are not all the same device class.
    pub fn is_heterogeneous(&self) -> bool {
        self.machine_classes
            .windows(2)
            .any(|pair| pair[0] != pair[1])
    }

    /// The class of one machine (the default class when no classes are set
    /// or the machine index is out of the class vector's range).
    pub fn class_of_machine(&self, m: MachineId) -> DeviceClass {
        self.machine_classes
            .get(m.index())
            .cloned()
            .unwrap_or_else(|| self.default_class())
    }

    /// Resolves the per-machine class assignment into a [`ClassMap`]:
    /// distinct classes in first-appearance order plus each machine's class
    /// index. Homogeneous clusters resolve to a single class.
    pub fn class_map(&self) -> ClassMap {
        let mut classes: Vec<DeviceClass> = Vec::new();
        let mut machine_class = Vec::with_capacity(self.machines);
        for m in 0..self.machines {
            let class = self.class_of_machine(MachineId(m));
            let idx = match classes.iter().position(|c| *c == class) {
                Some(i) => i,
                None => {
                    classes.push(class);
                    classes.len() - 1
                }
            };
            machine_class.push(idx);
        }
        if classes.is_empty() {
            classes.push(self.default_class());
        }
        ClassMap {
            classes,
            machine_class,
            devices_per_machine: self.devices_per_machine,
        }
    }

    /// Per-machine intra-node link scales (1.0 everywhere when homogeneous).
    pub fn machine_link_scales(&self) -> Vec<f64> {
        (0..self.machines)
            .map(|m| self.class_of_machine(MachineId(m)).link_scale)
            .collect()
    }

    /// Device memory of one device, honouring its machine's class.
    pub fn device_memory_of(&self, d: DeviceId) -> u64 {
        let machine = d.rank() / self.devices_per_machine.max(1);
        self.machine_classes
            .get(machine)
            .map_or(self.device_memory_bytes, |c| c.memory_bytes)
    }

    /// Total number of devices.
    pub fn world_size(&self) -> usize {
        self.machines * self.devices_per_machine
    }

    /// All device ids in rank order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.world_size()).map(DeviceId)
    }

    /// Machine hosting a device.
    ///
    /// # Panics
    ///
    /// Panics if the device rank is out of range.
    pub fn machine_of(&self, d: DeviceId) -> MachineId {
        assert!(d.rank() < self.world_size(), "device {d} out of range");
        MachineId(d.rank() / self.devices_per_machine)
    }

    /// True if both devices are on the same machine.
    pub fn same_machine(&self, a: DeviceId, b: DeviceId) -> bool {
        self.machine_of(a) == self.machine_of(b)
    }

    /// Number of distinct machines spanned by the given devices.
    pub fn machines_spanned(&self, devices: &[DeviceId]) -> usize {
        let mut machines: Vec<usize> = devices
            .iter()
            .map(|&d| self.machine_of(d).index())
            .collect();
        machines.sort_unstable();
        machines.dedup();
        machines.len()
    }

    /// The surviving cluster after removing the given machines — the
    /// degraded-mode shape a planner re-plans on when nodes drop.
    ///
    /// Duplicate and out-of-range indices in `removed` are ignored. The
    /// per-machine [`DeviceClass`] assignment is carried over class-aware:
    /// each surviving machine keeps its own class, in surviving order, so a
    /// mixed fleet that loses an H100 box re-plans as the A100 boxes it
    /// still has. Removing every machine yields an empty (0-machine)
    /// cluster, which planners reject downstream.
    pub fn without_machines(&self, removed: &[MachineId]) -> Self {
        let survives = |m: usize| !removed.iter().any(|r| r.index() == m);
        let machine_classes = if self.machine_classes.is_empty() {
            Vec::new()
        } else {
            (0..self.machines)
                .filter(|&m| survives(m))
                .map(|m| self.class_of_machine(MachineId(m)))
                .collect()
        };
        ClusterSpec {
            machines: (0..self.machines).filter(|&m| survives(m)).count(),
            machine_classes,
            ..self.clone()
        }
    }

    /// The communication cost model for this topology.
    pub fn comm_model(&self) -> CommModel {
        CommModel::new(self.clone())
    }

    /// Stable 64-bit content fingerprint of the cluster shape and link
    /// parameters.
    ///
    /// Structurally identical clusters fingerprint identically across
    /// processes; any planning-relevant edit (shape, bandwidth, latency,
    /// memory) changes the digest. `dpipe_serve` keys its plan cache on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dpipe_cluster::ClusterSpec");
        h.write_usize(self.machines);
        h.write_usize(self.devices_per_machine);
        for link in [&self.intra_link, &self.inter_link] {
            h.write_f64(link.bandwidth);
            h.write_f64(link.latency);
        }
        h.write_f64(self.spine_oversubscription);
        h.write_u64(self.device_memory_bytes);
        // Homogeneous clusters hash exactly as before the device-class
        // extension; any explicit class assignment extends the digest, so a
        // heterogeneous cluster can never collide with the homogeneous one
        // of the same shape.
        if !self.machine_classes.is_empty() {
            h.write_str("machine_classes");
            h.write_usize(self.machine_classes.len());
            for class in &self.machine_classes {
                h.write_str(&class.name);
                h.write_f64(class.compute_scale);
                h.write_u64(class.memory_bytes);
                h.write_f64(class.link_scale);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4de_shape() {
        let c = ClusterSpec::p4de(8);
        assert_eq!(c.world_size(), 64);
        assert_eq!(c.machine_of(DeviceId(0)), MachineId(0));
        assert_eq!(c.machine_of(DeviceId(63)), MachineId(7));
        assert!(c.same_machine(DeviceId(0), DeviceId(7)));
        assert!(!c.same_machine(DeviceId(7), DeviceId(8)));
    }

    #[test]
    fn machines_spanned_counts_unique() {
        let c = ClusterSpec::p4de(4);
        let devs: Vec<DeviceId> = vec![DeviceId(0), DeviceId(1), DeviceId(8), DeviceId(9)];
        assert_eq!(c.machines_spanned(&devs), 2);
        assert_eq!(c.machines_spanned(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn machine_of_panics_out_of_range() {
        ClusterSpec::p4de(1).machine_of(DeviceId(8));
    }

    #[test]
    fn single_node_helper() {
        let c = ClusterSpec::single_node(4);
        assert_eq!(c.world_size(), 4);
        assert_eq!(c.machines, 1);
    }

    #[test]
    fn fingerprint_is_deterministic_and_shape_sensitive() {
        let c = ClusterSpec::p4de(2);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        assert_ne!(c.fingerprint(), ClusterSpec::p4de(4).fingerprint());
        assert_ne!(
            ClusterSpec::single_node(8).fingerprint(),
            ClusterSpec::single_node(4).fingerprint()
        );
        let mut slow = ClusterSpec::p4de(2);
        slow.inter_link.bandwidth /= 2.0;
        assert_ne!(slow.fingerprint(), c.fingerprint());
    }

    #[test]
    fn mixed_cluster_shape_and_classes() {
        let c = ClusterSpec::mixed(&[(DeviceClass::a100(), 2), (DeviceClass::h100(), 2)]);
        assert_eq!(c.machines, 4);
        assert_eq!(c.world_size(), 32);
        assert!(c.is_heterogeneous());
        assert!(c.validate_classes().is_ok());
        assert_eq!(c.class_of_machine(MachineId(0)).name, "a100");
        assert_eq!(c.class_of_machine(MachineId(3)).name, "h100");
        let map = c.class_map();
        assert_eq!(map.num_classes(), 2);
        assert_eq!(map.machine_class, vec![0, 0, 1, 1]);
        assert_eq!(map.class_of_device(DeviceId(17)), 1);
    }

    #[test]
    fn homogeneous_class_map_is_single_class() {
        let c = ClusterSpec::p4de(2);
        assert!(!c.is_heterogeneous());
        let map = c.class_map();
        assert_eq!(map.num_classes(), 1);
        assert_eq!(map.compute_scales(), vec![1.0]);
        assert_eq!(c.device_memory_of(DeviceId(5)), c.device_memory_bytes);
        assert_eq!(c.machine_link_scales(), vec![1.0, 1.0]);
    }

    #[test]
    fn class_mismatch_is_rejected() {
        let c = ClusterSpec::p4de(4).with_machine_classes(vec![DeviceClass::a100()]);
        assert!(c.validate_classes().is_err());
        // Non-panicking fallbacks: machines past the class vector resolve to
        // the default class.
        assert_eq!(c.class_of_machine(MachineId(3)).compute_scale, 1.0);
    }

    #[test]
    fn hetero_fingerprint_differs_homogeneous_unchanged() {
        let homo = ClusterSpec::p4de(2);
        let explicit = ClusterSpec::p4de(2).with_machine_classes(vec![DeviceClass::a100(); 2]);
        let mixed = ClusterSpec::p4de(2)
            .with_machine_classes(vec![DeviceClass::a100(), DeviceClass::h100()]);
        assert_ne!(homo.fingerprint(), mixed.fingerprint());
        assert_ne!(explicit.fingerprint(), mixed.fingerprint());
        // Classes hash in order, so swapping machines changes the digest.
        let swapped = ClusterSpec::p4de(2)
            .with_machine_classes(vec![DeviceClass::h100(), DeviceClass::a100()]);
        assert_ne!(mixed.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn device_memory_honours_classes() {
        let c = ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::a10g(), 1)]);
        assert_eq!(c.device_memory_of(DeviceId(0)), 80 * (1 << 30));
        assert_eq!(c.device_memory_of(DeviceId(8)), 24 * (1 << 30));
        let map = c.class_map();
        assert_eq!(map.slowest_class(), 1);
        assert_eq!(
            map.min_memory(c.devices().collect::<Vec<_>>()),
            24 * (1 << 30)
        );
    }

    #[test]
    fn without_machines_shrinks_and_keeps_classes() {
        // Homogeneous: shape shrinks, classes stay empty.
        let c = ClusterSpec::p4de(4).without_machines(&[MachineId(1), MachineId(3)]);
        assert_eq!(c.machines, 2);
        assert_eq!(c.world_size(), 16);
        assert!(c.machine_classes.is_empty());
        // Duplicates and out-of-range indices are ignored.
        let same =
            ClusterSpec::p4de(4).without_machines(&[MachineId(1), MachineId(1), MachineId(99)]);
        assert_eq!(same.machines, 3);
        // Class-aware: each survivor keeps its own class in order.
        let mixed = ClusterSpec::mixed(&[(DeviceClass::a100(), 2), (DeviceClass::h100(), 2)]);
        let survived = mixed.without_machines(&[MachineId(0), MachineId(3)]);
        assert_eq!(survived.machines, 2);
        assert_eq!(
            survived
                .machine_classes
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a100", "h100"]
        );
        // Removing everything leaves an empty cluster.
        let none = ClusterSpec::p4de(2).without_machines(&[MachineId(0), MachineId(1)]);
        assert_eq!(none.world_size(), 0);
    }

    #[test]
    fn devices_iterates_in_rank_order() {
        let c = ClusterSpec::single_node(3);
        let ranks: Vec<usize> = c.devices().map(|d| d.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }
}
