//! Device classes for heterogeneous (mixed-GPU) clusters.
//!
//! A [`DeviceClass`] describes one GPU generation relative to the reference
//! A100-class card the cost models are calibrated against: a compute scale
//! (relative sustained throughput), the device memory capacity, and an
//! intra-node interconnect scale (NVSwitch-class = 1.0, PCIe-class boxes
//! well below it). A [`crate::ClusterSpec`] optionally carries one class per
//! machine; when it carries none, every machine is the implicit reference
//! class and all cost arithmetic is bit-identical to the homogeneous model.

use serde::{Deserialize, Serialize};

use crate::device::DeviceId;

/// One GPU generation / SKU family, parameterised relative to the reference
/// A100-class device (`compute_scale == 1.0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Class name (`a100`, `h100`, `a10g`, ...), informational and hashed
    /// into cluster fingerprints.
    pub name: String,
    /// Sustained compute throughput relative to the reference class.
    pub compute_scale: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Intra-node collective bandwidth relative to the reference NVSwitch
    /// fabric (1.0). PCIe-only inference boxes sit far below 1.
    pub link_scale: f64,
}

impl DeviceClass {
    /// The reference A100-80GB-class device (scale 1.0 by definition).
    pub fn a100() -> Self {
        DeviceClass {
            name: "a100".to_owned(),
            compute_scale: 1.0,
            memory_bytes: 80 * (1 << 30),
            link_scale: 1.0,
        }
    }

    /// An H100-80GB-class device: ~2.2× the sustained mixed-workload
    /// throughput of an A100 and a faster (NVLink4-class) intra-node fabric.
    pub fn h100() -> Self {
        DeviceClass {
            name: "h100".to_owned(),
            compute_scale: 2.2,
            memory_bytes: 80 * (1 << 30),
            link_scale: 1.5,
        }
    }

    /// An A10G-class inference card: ~0.35× an A100, 24 GB, PCIe-only
    /// intra-node fabric.
    pub fn a10g() -> Self {
        DeviceClass {
            name: "a10g".to_owned(),
            compute_scale: 0.35,
            memory_bytes: 24 * (1 << 30),
            link_scale: 0.12,
        }
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "a100" => DeviceClass::a100(),
            "h100" => DeviceClass::h100(),
            "a10g" => DeviceClass::a10g(),
            _ => return None,
        })
    }

    /// Parses a machine spec like `a100:4,h100:4` into one class per
    /// machine (here: 8 machines). A bare `a100` means one machine.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown class names or malformed
    /// counts.
    pub fn parse_machine_spec(spec: &str) -> Result<Vec<DeviceClass>, String> {
        let mut machines = Vec::new();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, count) = match part.split_once(':') {
                Some((n, c)) => {
                    let count: usize = c
                        .parse()
                        .map_err(|_| format!("bad machine count `{c}` in `{part}`"))?;
                    (n, count)
                }
                None => (part, 1),
            };
            let class = DeviceClass::by_name(name)
                .ok_or_else(|| format!("unknown device class `{name}` (a100, h100, a10g)"))?;
            machines.extend(std::iter::repeat_n(class, count));
        }
        if machines.is_empty() {
            return Err("machine spec names no machines".to_owned());
        }
        Ok(machines)
    }
}

/// Resolved per-machine class assignment of one cluster: the distinct
/// classes (first-appearance order) and each machine's index into them.
///
/// Built once per planning pass with [`crate::ClusterSpec::class_map`];
/// homogeneous clusters resolve to a single class so per-class loops
/// degenerate to the legacy single-table code paths.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMap {
    /// Distinct device classes in first-appearance order.
    pub classes: Vec<DeviceClass>,
    /// Machine index → index into `classes`.
    pub machine_class: Vec<usize>,
    /// Devices per machine (for device → machine resolution).
    pub devices_per_machine: usize,
}

impl ClassMap {
    /// Number of distinct classes (≥ 1).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Relative compute scale of every distinct class, in class order.
    pub fn compute_scales(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.compute_scale).collect()
    }

    /// Class index of a device (0 for out-of-range ranks).
    pub fn class_of_device(&self, d: DeviceId) -> usize {
        let machine = d.rank() / self.devices_per_machine.max(1);
        self.machine_class.get(machine).copied().unwrap_or(0)
    }

    /// The class that governs a co-scheduled device set: replicas split the
    /// work evenly, so the *slowest* class (minimum compute scale, ties
    /// broken toward the smaller class index) bounds the set's speed.
    /// Returns class 0 for an empty set.
    pub fn effective_class(&self, devices: impl IntoIterator<Item = DeviceId>) -> usize {
        self.effective_of_indices(devices.into_iter().map(|d| self.class_of_device(d)))
    }

    /// [`ClassMap::effective_class`] over already-resolved class indices —
    /// the single home of the slowest-class selection rule (minimum compute
    /// scale, ties toward the smaller index; class 0 for an empty set).
    pub fn effective_of_indices(&self, indices: impl IntoIterator<Item = usize>) -> usize {
        let mut best: Option<usize> = None;
        for c in indices {
            let better = match best {
                None => true,
                Some(b) => {
                    let (sb, sc) = (self.classes[b].compute_scale, self.classes[c].compute_scale);
                    sc < sb || (sc == sb && c < b)
                }
            };
            if better {
                best = Some(c);
            }
        }
        best.unwrap_or(0)
    }

    /// The tightest device-memory budget over a device set (`u64::MAX` for
    /// an empty set, so empty stages never constrain).
    pub fn min_memory(&self, devices: impl IntoIterator<Item = DeviceId>) -> u64 {
        devices
            .into_iter()
            .map(|d| self.classes[self.class_of_device(d)].memory_bytes)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The class with the smallest compute scale (ties toward the smaller
    /// index) — the device the data-parallel frozen tail must wait for.
    pub fn slowest_class(&self) -> usize {
        let mut best = 0usize;
        for (i, c) in self.classes.iter().enumerate().skip(1) {
            if c.compute_scale < self.classes[best].compute_scale {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let a100 = DeviceClass::a100();
        assert_eq!(a100.compute_scale, 1.0);
        assert_eq!(a100.link_scale, 1.0);
        assert!(DeviceClass::h100().compute_scale > 1.0);
        let a10g = DeviceClass::a10g();
        assert!(a10g.compute_scale < 1.0);
        assert!(a10g.memory_bytes < a100.memory_bytes);
        assert_eq!(DeviceClass::by_name("h100"), Some(DeviceClass::h100()));
        assert_eq!(DeviceClass::by_name("tpu"), None);
    }

    #[test]
    fn parse_machine_spec_expands_counts() {
        let machines = DeviceClass::parse_machine_spec("a100:2,h100:1").unwrap();
        assert_eq!(machines.len(), 3);
        assert_eq!(machines[0].name, "a100");
        assert_eq!(machines[2].name, "h100");
        assert_eq!(DeviceClass::parse_machine_spec("a10g").unwrap().len(), 1);
        assert!(DeviceClass::parse_machine_spec("v100:2").is_err());
        assert!(DeviceClass::parse_machine_spec("a100:x").is_err());
        assert!(DeviceClass::parse_machine_spec("").is_err());
    }

    #[test]
    fn effective_class_picks_slowest() {
        let map = ClassMap {
            classes: vec![DeviceClass::h100(), DeviceClass::a100()],
            machine_class: vec![0, 1],
            devices_per_machine: 2,
        };
        // Devices 0-1 are h100, 2-3 a100.
        assert_eq!(map.class_of_device(DeviceId(0)), 0);
        assert_eq!(map.class_of_device(DeviceId(3)), 1);
        assert_eq!(map.effective_class([DeviceId(0), DeviceId(1)]), 0);
        assert_eq!(map.effective_class([DeviceId(0), DeviceId(2)]), 1);
        assert_eq!(map.effective_class([]), 0);
        assert_eq!(map.slowest_class(), 1);
    }

    #[test]
    fn min_memory_over_devices() {
        let map = ClassMap {
            classes: vec![DeviceClass::a100(), DeviceClass::a10g()],
            machine_class: vec![0, 1],
            devices_per_machine: 4,
        };
        assert_eq!(
            map.min_memory([DeviceId(0), DeviceId(4)]),
            DeviceClass::a10g().memory_bytes
        );
        assert_eq!(
            map.min_memory([DeviceId(1)]),
            DeviceClass::a100().memory_bytes
        );
        assert_eq!(map.min_memory([]), u64::MAX);
    }
}
