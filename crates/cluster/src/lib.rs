//! Cluster topology and communication cost models.
//!
//! Substitutes the paper's physical testbed (8× AWS p4de.24xlarge: 8× A100
//! per machine, NVSwitch intra-node, EFA inter-node) with an explicit
//! topology description and an α–β (latency–bandwidth) communication model.
//! The planner's partitioning equations (Eqns. 3–8 of the paper) consume only
//! bandwidths `R_x` and latencies `L_x` for point-to-point and all-reduce
//! operations, which this crate provides.
//!
//! # Example
//!
//! ```
//! use dpipe_cluster::{ClusterSpec, DeviceId};
//!
//! let cluster = ClusterSpec::p4de(2); // 2 machines x 8 GPUs
//! assert_eq!(cluster.world_size(), 16);
//! let comm = cluster.comm_model();
//! // Intra-node p2p is far faster than inter-node.
//! let intra = comm.p2p_time(1 << 30, DeviceId(0), DeviceId(1));
//! let inter = comm.p2p_time(1 << 30, DeviceId(0), DeviceId(8));
//! assert!(inter > intra);
//! ```

mod class;
mod comm;
mod device;
mod groups;
mod topology;

pub use class::{ClassMap, DeviceClass};
pub use comm::{CommModel, LinkParams};
pub use device::{DeviceId, MachineId};
pub use groups::{DataParallelLayout, PipelineGroup};
pub use topology::ClusterSpec;
