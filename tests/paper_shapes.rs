//! Integration tests asserting the paper's headline *shapes* end-to-end
//! (DESIGN.md §5). Absolute numbers are simulation outputs; what must hold
//! is who wins, by roughly what factor, and where trends bend.

use diffusionpipe::baselines::{ddp, gpipe, spp, zero3};
use diffusionpipe::partition::SearchSpace;
use diffusionpipe::prelude::*;

fn profile(model: &ModelSpec, cluster: &ClusterSpec, batch: u32) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like())
        .with_world_size(cluster.world_size())
        .profile(model, batch)
        .0
}

/// Table 1: non-trainable/trainable time ratio grows with batch size and is
/// far higher for ControlNet than for Stable Diffusion.
#[test]
fn table1_ratio_shapes() {
    let sd = zoo::stable_diffusion_v2_1();
    let cn = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(1);
    let sd_db = profile(&sd, &cluster, 64);
    let cn_db = profile(&cn, &cluster, 64);
    let ratio =
        |db: &ProfileDb, b: f64| db.total_frozen_fwd_time(b) / db.total_trainable_fwd_bwd_time(b);
    for b in [8.0, 16.0, 32.0] {
        assert!(ratio(&sd_db, b) < ratio(&sd_db, 2.0 * b) + 1e-9);
    }
    assert!(ratio(&cn_db, 64.0) > 1.7 * ratio(&sd_db, 64.0));
}

/// Fig. 13 single-backbone ordering at one machine: DiffusionPipe >= SPP >=
/// GPipe, and DiffusionPipe beats DDP.
#[test]
fn fig13_single_backbone_ordering() {
    for model in [zoo::stable_diffusion_v2_1(), zoo::controlnet_v1_0()] {
        let cluster = ClusterSpec::single_node(8);
        let batch = 256;
        let plan = Planner::new(model.clone(), cluster.clone())
            .plan(batch)
            .unwrap();
        let db = profile(&model, &cluster, batch);
        let bb = model.backbones().next().unwrap().0;
        let r_spp = spp(&db, &cluster, bb, batch, &SearchSpace::default()).unwrap();
        let r_gpipe = gpipe(&db, &cluster, bb, batch, 2, 4).unwrap();
        let r_ddp = ddp(&db, &cluster, batch);
        assert!(
            plan.throughput > r_spp.throughput,
            "{}: dpipe {} !> spp {}",
            model.name,
            plan.throughput,
            r_spp.throughput
        );
        assert!(r_spp.throughput >= 0.95 * r_gpipe.throughput);
        assert!(
            plan.throughput > r_ddp.throughput,
            "{}: dpipe {} !> ddp {}",
            model.name,
            plan.throughput,
            r_ddp.throughput
        );
    }
}

/// Fig. 13 speedup magnitudes at scale: DiffusionPipe's advantage over DDP
/// grows with the cluster (sync overhead) and lands in the paper's ballpark
/// (up to ~1.3-1.4x over data parallel, more over GPipe).
#[test]
fn fig13_speedups_grow_with_scale() {
    let model = zoo::controlnet_v1_0();
    let mut speedups = Vec::new();
    for machines in [1usize, 4] {
        let cluster = ClusterSpec::p4de(machines);
        let batch = 32 * cluster.world_size() as u32;
        let plan = Planner::new(model.clone(), cluster.clone())
            .plan(batch)
            .unwrap();
        let db = profile(&model, &cluster, batch);
        let r_ddp = ddp(&db, &cluster, batch);
        speedups.push(plan.throughput / r_ddp.throughput);
    }
    assert!(speedups[1] > speedups[0], "{speedups:?}");
    assert!(speedups[1] > 1.10 && speedups[1] < 2.5, "{speedups:?}");
}

/// Fig. 14: DiffusionPipe's residual bubble ratio is a small fraction of
/// GPipe's / SPP's.
#[test]
fn fig14_bubble_ratios() {
    for model in [zoo::stable_diffusion_v2_1(), zoo::controlnet_v1_0()] {
        let cluster = ClusterSpec::single_node(8);
        let batch = 256;
        let plan = Planner::new(model.clone(), cluster.clone())
            .plan(batch)
            .unwrap();
        let db = profile(&model, &cluster, batch);
        let bb = model.backbones().next().unwrap().0;
        let r_gpipe = gpipe(&db, &cluster, bb, batch, 2, 4).unwrap();
        assert!(
            plan.bubble_ratio < 0.08,
            "{}: {}",
            model.name,
            plan.bubble_ratio
        );
        assert!(
            plan.bubble_ratio < 0.5 * r_gpipe.bubble_ratio,
            "{}: dpipe {} vs gpipe {}",
            model.name,
            plan.bubble_ratio,
            r_gpipe.bubble_ratio
        );
    }
}

/// Fig. 15 ablation ordering at batch 384: full >= no-partial >= no-fill,
/// with no-partial collapsing toward no-fill (the extra-long layer blocks
/// everything).
#[test]
fn fig15_ablation_ordering() {
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let batch = 384;
    let full = Planner::new(model.clone(), cluster.clone())
        .plan(batch)
        .unwrap();
    let no_partial = Planner::new(model.clone(), cluster.clone())
        .with_options(PlannerOptions {
            bubble_filling: true,
            partial_batch: false,
        })
        .plan(batch)
        .unwrap();
    let no_fill = Planner::new(model, cluster)
        .with_options(PlannerOptions {
            bubble_filling: false,
            partial_batch: false,
        })
        .plan(batch)
        .unwrap();
    assert!(full.throughput >= no_partial.throughput);
    assert!(no_partial.throughput >= 0.95 * no_fill.throughput);
    assert!(full.throughput > 1.05 * no_fill.throughput);
}

/// CDM: DiffusionPipe is comparable to DeepSpeed-P (within a factor) while
/// using less per-device memory than DeepSpeed-P.
#[test]
fn fig13_cdm_comparable_to_deepspeed_p() {
    use diffusionpipe::baselines::{cdm_data_parallel, CdmMode};
    let model = zoo::cdm_lsun();
    let cluster = ClusterSpec::single_node(8);
    let batch = 256;
    let plan = Planner::new(model.clone(), cluster.clone())
        .plan(batch)
        .unwrap();
    let db = profile(&model, &cluster, batch);
    let p = cdm_data_parallel(&db, &cluster, batch, CdmMode::Parallel, false);
    let ratio = plan.throughput / p.throughput;
    assert!((0.6..1.8).contains(&ratio), "ratio {ratio}");
    assert!(plan.peak_memory_bytes < p.peak_memory_bytes);
}

/// ZeRO-3 trades speed for memory relative to DDP on single-backbone models.
#[test]
fn zero3_tradeoff_holds_end_to_end() {
    let model = zoo::stable_diffusion_v2_1();
    let cluster = ClusterSpec::p4de(2);
    let batch = 8 * 16;
    let db = profile(&model, &cluster, batch);
    let r_ddp = ddp(&db, &cluster, batch);
    let r_z3 = zero3(&db, &cluster, batch);
    assert!(r_z3.throughput < r_ddp.throughput);
    assert!(r_z3.peak_memory_bytes < r_ddp.peak_memory_bytes);
}
