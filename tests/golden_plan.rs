//! Golden end-to-end plan: the Fig. 7 workflow contract on the paper's
//! flagship configuration (Stable Diffusion v2.1 on one 8-GPU machine,
//! global batch 256). This is the doc-example of `diffusionpipe_core`,
//! pinned as an integration test so the planning workflow can never
//! silently regress below the paper's headline behaviour.

use diffusionpipe::prelude::*;

#[test]
fn sd_on_single_node_meets_fig7_contract() {
    let plan = Planner::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8))
        .plan(256)
        .expect("flagship configuration must plan");

    // The Fig. 7 contract: positive simulated throughput and the residual
    // bubble ratio after filling well under the unfilled pipeline's.
    assert!(
        plan.throughput > 0.0 && plan.throughput.is_finite(),
        "throughput {} must be finite and positive",
        plan.throughput
    );
    assert!(
        plan.bubble_ratio < 0.25,
        "bubble ratio {} exceeds the 0.25 contract",
        plan.bubble_ratio
    );

    // Sanity on the rest of the plan surface the README quotes.
    assert!(plan.iteration_time > 0.0);
    assert!(plan.peak_memory_bytes <= ClusterSpec::single_node(8).device_memory_bytes);
    assert!(matches!(plan.partition, BackbonePartition::Single(_)));
}

/// The golden plan is deterministic: planning twice yields bit-identical
/// headline numbers (the profiler and simulator have no hidden state).
#[test]
fn golden_plan_is_deterministic() {
    let plan = || {
        Planner::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8))
            .plan(256)
            .unwrap()
    };
    let (a, b) = (plan(), plan());
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.bubble_ratio.to_bits(), b.bubble_ratio.to_bits());
    assert_eq!(a.iteration_time.to_bits(), b.iteration_time.to_bits());
    assert_eq!(a.peak_memory_bytes, b.peak_memory_bytes);
}
