//! Memory-driven planning: pipeline parallelism must unlock configurations
//! that data parallelism cannot reach (the paper's "DiffusionPipe enables
//! larger training batch sizes" claim, §6.1).

use diffusionpipe::baselines::{ddp, MemoryModel};
use diffusionpipe::prelude::*;

#[test]
fn tight_memory_forces_pipelining() {
    // SDXL on GPUs with only 32 GiB: full-model DDP states (~42 GiB for a
    // 2.6 B-param backbone) cannot fit, but pipeline stages can.
    let model = zoo::sdxl_base();
    let mut cluster = ClusterSpec::single_node(8);
    cluster.device_memory_bytes = 32 * (1 << 30);
    let batch = 64u32;

    let mm = MemoryModel::new(&model);
    assert!(
        mm.ddp_peak((batch / 8) as f64) > cluster.device_memory_bytes,
        "test premise: DDP should not fit"
    );

    let plan = Planner::new(model.clone(), cluster.clone())
        .plan(batch)
        .unwrap();
    assert!(
        plan.hyper.num_stages >= 2,
        "expected a multi-stage pipeline, got {}",
        plan.summary()
    );
    assert!(plan.peak_memory_bytes <= cluster.device_memory_bytes);

    // And the DDP baseline indeed reports OOM on the same hardware.
    let db = Profiler::new(DeviceModel::a100_like())
        .with_world_size(8)
        .profile(&model, batch);
    let r = ddp(&db.0, &cluster, batch);
    assert!(r.oom, "DDP baseline should OOM at 32 GiB");
}

#[test]
fn pipeline_reaches_larger_batches_than_ddp() {
    // On A100-80GB, scan batch sizes: the largest feasible DDP batch must
    // be smaller than the largest feasible DiffusionPipe batch.
    let model = zoo::sdxl_base();
    let cluster = ClusterSpec::single_node(8);
    let db = Profiler::new(DeviceModel::a100_like())
        .with_world_size(8)
        .profile(&model, 64)
        .0;
    let mut max_ddp = 0u32;
    let mut max_pipe = 0u32;
    for batch in [64u32, 128, 192, 256, 320, 384, 448, 512] {
        if !ddp(&db, &cluster, batch).oom {
            max_ddp = batch;
        }
        if Planner::new(model.clone(), cluster.clone())
            .plan(batch)
            .is_ok()
        {
            max_pipe = batch;
        }
    }
    assert!(
        max_pipe > max_ddp,
        "pipe max {max_pipe} should exceed ddp max {max_ddp}"
    );
}

#[test]
fn plan_memory_never_exceeds_budget() {
    for (model, batch) in [
        (zoo::stable_diffusion_v2_1(), 384u32),
        (zoo::controlnet_v1_0(), 384),
        (zoo::cdm_lsun(), 512),
    ] {
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model.clone(), cluster.clone())
            .plan(batch)
            .unwrap();
        assert!(
            plan.peak_memory_bytes <= cluster.device_memory_bytes,
            "{}: {} bytes over budget",
            model.name,
            plan.peak_memory_bytes
        );
    }
}
