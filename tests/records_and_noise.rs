//! Record-backed planning and robustness to profiling noise.
//!
//! The paper drives all planning from measured profile records (Fig. 7,
//! step 1) and attributes the residual unfilled bubble time to the gap
//! between profiled and actual execution times (§6.2). These tests exercise
//! both: planning from interpolated records must agree closely with
//! planning from the analytic model, and moderate profiling noise must
//! degrade the fill only mildly.

use diffusionpipe::prelude::*;
use diffusionpipe::profile::NoiseConfig;
use diffusionpipe::sim::CombinedIteration;
use dpipe_model::LayerId;

#[test]
fn record_backed_times_interpolate_close_to_analytic() {
    let model = zoo::stable_diffusion_v2_1();
    let profiler = Profiler::new(DeviceModel::a100_like());
    let (analytic, _) = profiler.profile(&model, 64);
    let (recorded, _) = profiler
        .profile_records(&model, 64)
        .expect("complete records");
    assert!(recorded.is_record_backed());
    // At profiled batches: exact. Between them: close (the true curve is
    // mildly convex, the interpolation is piecewise linear).
    for (cid, comp) in model.components_enumerated() {
        for (lid, _) in comp.layers_enumerated() {
            for &b in &[8.0, 16.0, 64.0] {
                let a = analytic.fwd_time(cid, lid, b);
                let r = recorded.fwd_time(cid, lid, b);
                assert!((a - r).abs() <= 1e-12 * a.max(1e-12), "exact at {b}");
            }
            for &b in &[10.0, 20.0, 40.0] {
                let a = analytic.fwd_time(cid, lid, b);
                let r = recorded.fwd_time(cid, lid, b);
                assert!(
                    (a - r).abs() <= 0.05 * a.max(1e-9),
                    "layer {cid}/{lid} at batch {b}: analytic {a} vs interpolated {r}"
                );
            }
        }
    }
}

#[test]
fn planning_from_records_matches_analytic_planning() {
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let batch = 256u32;
    let profiler = Profiler::new(DeviceModel::a100_like()).with_world_size(8);
    let (recorded, _) = profiler
        .profile_records(&model, batch)
        .expect("complete records");

    // Re-run the per-config pipeline manually with the record-backed db and
    // compare against the planner's analytic result.
    let analytic_plan = Planner::new(model.clone(), cluster.clone())
        .plan(batch)
        .unwrap();
    let hp = analytic_plan.hyper;
    let layout = DataParallelLayout::new(&cluster, hp.group_size).unwrap();
    let part = Partitioner::new(&recorded, &cluster, &layout);
    let bb = model.backbones().next().unwrap().0;
    let cfg = PartitionConfig::new(
        hp.num_stages,
        hp.num_micro_batches,
        hp.group_batch(batch, 8),
    );
    let plan = part.partition_single(bb, &cfg).unwrap();
    let sched = ScheduleBuilder::new(&recorded, &cluster, &layout)
        .build_single(&plan, ScheduleKind::Fifo1F1B)
        .unwrap();
    let bubbles = sched.bubbles(0.010);
    let fill = Filler::new(&recorded, FillConfig::default())
        .fill(&bubbles, sched.group_batch, hp.group_size)
        .unwrap();
    let combined = CombinedIteration::new(&sched, &bubbles, &fill);
    let rec_throughput = combined.cluster_throughput(8 / hp.group_size);
    let rel = (rec_throughput - analytic_plan.throughput).abs() / analytic_plan.throughput;
    assert!(
        rel < 0.03,
        "record-backed {rec_throughput} vs analytic {}",
        analytic_plan.throughput
    );
}

#[test]
fn noise_degrades_fill_gracefully() {
    // Plan with noisy profile data but evaluate against true times: the
    // residual bubble ratio grows with sigma yet stays moderate at ±5%
    // (the paper's §6.2 explanation for its <5% residual bubbles).
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let batch = 384u32;
    let profiler = Profiler::new(DeviceModel::a100_like()).with_world_size(8);
    let (true_db, _) = profiler.profile(&model, batch);

    let layout = DataParallelLayout::new(&cluster, 2).unwrap();
    let bb = model.backbones().next().unwrap().0;
    let cfg = PartitionConfig::new(2, 1, 96.0);

    let mut ratios = Vec::new();
    for sigma in [0.0, 0.05] {
        let noisy = true_db.clone().with_noise(NoiseConfig { sigma, seed: 7 });
        // Plan from noisy view.
        let plan = Partitioner::new(&noisy, &cluster, &layout)
            .partition_single(bb, &cfg)
            .unwrap();
        // Evaluate with true times: the schedule realises true durations,
        // but the *fill decisions* were made from the noisy view. We model
        // the §6.2 effect by filling with noisy times and measuring the
        // overrun/underrun against the true bubble capacity.
        let sched = ScheduleBuilder::new(&true_db, &cluster, &layout)
            .build_single(&plan, ScheduleKind::Fifo1F1B)
            .unwrap();
        let bubbles = sched.bubbles(0.010);
        let fill = Filler::new(&noisy, FillConfig::default())
            .fill(&bubbles, sched.group_batch, 2)
            .unwrap();
        let combined = CombinedIteration::new(&sched, &bubbles, &fill);
        ratios.push(combined.bubble_ratio());
    }
    assert!(ratios[0] <= ratios[1] + 0.02, "{ratios:?}");
    assert!(
        ratios[1] < 0.15,
        "noisy residual bubbles too large: {ratios:?}"
    );
}

#[test]
fn layer_id_display_in_errors() {
    // Smoke: LayerId implements Display as used in record panics.
    assert_eq!(LayerId(3).to_string(), "l3");
}
