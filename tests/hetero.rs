//! Heterogeneity golden + end-to-end coverage.
//!
//! Two guarantees:
//!
//! * **Homogeneous is byte-identical.** A cluster routed through the
//!   explicit device-class path (one uniform A100-class entry per machine)
//!   must reproduce the committed `tests/goldens/plan_summaries.txt` lines
//!   byte for byte — the class machinery is provably inert when every
//!   machine is the reference class.
//! * **Mixed fleets genuinely plan.** A mixed A100/H100 sweep produces
//!   feasible plans whose fingerprints differ from the homogeneous ones,
//!   whose fast path matches the reference loop bit for bit, and whose
//!   throughput only improves (no candidate gets slower when half the
//!   fleet gets faster). Inference-class (A10G) fleets respect their
//!   per-class 24 GB memory budget.

use diffusionpipe::core::Planner;
use diffusionpipe::prelude::*;
use std::collections::HashMap;

const GOLDEN_PATH: &str = "tests/goldens/plan_summaries.txt";

/// Committed golden lines keyed by `model@Ngpu/bB`.
fn goldens() -> HashMap<String, String> {
    std::fs::read_to_string(GOLDEN_PATH)
        .expect("committed goldens present")
        .lines()
        .map(|l| {
            let (key, rest) = l.split_once('\t').expect("golden line shape");
            (key.to_owned(), rest.to_owned())
        })
        .collect()
}

fn uniform_a100(gpus: usize) -> ClusterSpec {
    if gpus > 8 && gpus.is_multiple_of(8) {
        let machines = gpus / 8;
        ClusterSpec::p4de(machines).with_machine_classes(vec![DeviceClass::a100(); machines])
    } else {
        ClusterSpec::single_node(gpus).with_machine_classes(vec![DeviceClass::a100()])
    }
}

#[test]
fn uniform_class_path_reproduces_committed_goldens() {
    let goldens = goldens();
    let cases: [(&str, ModelSpec); 3] = [
        ("sd", zoo::stable_diffusion_v2_1()),
        ("controlnet", zoo::controlnet_v1_0()),
        ("cdm-lsun", zoo::cdm_lsun()),
    ];
    for (name, model) in cases {
        for gpus in [8usize, 16] {
            for batch in [64u32, 256] {
                let key = format!("{name}@{gpus}gpu/b{batch}");
                let golden = goldens.get(&key).expect("golden line exists");
                let plan = Planner::new(model.clone(), uniform_a100(gpus))
                    .with_parallelism(2)
                    .plan(batch)
                    .expect("golden cases are feasible");
                assert_eq!(
                    format!("OK\t{}", plan.summary()),
                    *golden,
                    "uniform-class plan drifted from the committed golden for {key}"
                );
            }
        }
    }
}

#[test]
fn mixed_a100_h100_sweep_is_feasible_and_distinct() {
    let mixed = ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]);
    let goldens = goldens();
    for (name, model) in [
        ("sd", zoo::stable_diffusion_v2_1()),
        ("controlnet", zoo::controlnet_v1_0()),
        ("cdm-lsun", zoo::cdm_lsun()),
    ] {
        for batch in [64u32, 256] {
            let planner = Planner::new(model.clone(), mixed.clone()).with_parallelism(2);
            let plan = planner.plan(batch).expect("mixed fleet plans");
            assert!(plan.throughput > 0.0);

            // Fast path stays bit-identical to the reference loop on
            // heterogeneous inputs.
            let reference = planner.plan_reference(batch).expect("reference plans");
            assert_eq!(plan.summary(), reference.summary(), "{name}/b{batch}");
            assert_eq!(plan.partition, reference.partition, "{name}/b{batch}");

            // Never slower than the all-A100 fleet of the same shape: every
            // candidate's stage times only improve when half the machines
            // speed up.
            let homo = Planner::new(model.clone(), ClusterSpec::p4de(2))
                .with_parallelism(2)
                .plan(batch)
                .expect("homogeneous plans");
            assert!(
                plan.throughput >= homo.throughput,
                "{name}/b{batch}: mixed {} < homo {}",
                plan.throughput,
                homo.throughput
            );

            // The request fingerprint (serve-cache key) must differ from
            // the homogeneous request's.
            let mixed_key = PlanRequest::new(model.clone(), mixed.clone(), batch).fingerprint();
            let homo_key =
                PlanRequest::new(model.clone(), ClusterSpec::p4de(2), batch).fingerprint();
            assert_ne!(mixed_key, homo_key, "{name}/b{batch}");

            // And for the D=16-winning golden cases, the *plan* itself
            // differs: the H100 half shifts the chosen partition/metrics.
            if let Some(golden) = goldens.get(&format!("{name}@16gpu/b{batch}")) {
                if golden.contains("D=16") {
                    assert_ne!(
                        format!("OK\t{}", plan.summary()),
                        *golden,
                        "{name}/b{batch}: mixed plan unexpectedly identical to golden"
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_fleet_skews_layers_toward_the_faster_half() {
    // ControlNet@16/b256 picks S=2 M=1 D=16 (committed golden): stage 0 on
    // the A100 machine, stage 1 on the H100 machine. The DP must give the
    // 2.2x-faster stage strictly more layers than the homogeneous split.
    let mixed = ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]);
    let plan = Planner::new(zoo::controlnet_v1_0(), mixed)
        .plan(256)
        .expect("mixed controlnet plans");
    let homo = Planner::new(zoo::controlnet_v1_0(), ClusterSpec::p4de(2))
        .plan(256)
        .expect("homogeneous controlnet plans");
    let (
        diffusionpipe::core::BackbonePartition::Single(mixed_p),
        diffusionpipe::core::BackbonePartition::Single(homo_p),
    ) = (&plan.partition, &homo.partition)
    else {
        panic!("controlnet partitions are single-backbone");
    };
    assert_eq!(plan.hyper.group_size, 16, "winner spans both machines");
    let last_mixed = mixed_p.stages.last().expect("stages").layers.len();
    let last_homo = homo_p.stages.last().expect("stages").layers.len();
    assert!(
        last_mixed > last_homo,
        "H100 stage holds {last_mixed} layers, homogeneous split held {last_homo}"
    );
}

#[test]
fn inference_class_fleet_respects_per_class_memory() {
    // 24 GB A10Gs: SD at batch 256 peaks at ~37 GiB on a single 80 GB A100
    // node (committed golden), so the A10G fleet must either repartition
    // under the budget or report infeasibility — never exceed it.
    let a10g = ClusterSpec::mixed(&[(DeviceClass::a10g(), 2)]);
    match Planner::new(zoo::stable_diffusion_v2_1(), a10g).plan(256) {
        Ok(plan) => assert!(
            plan.peak_memory_bytes <= DeviceClass::a10g().memory_bytes,
            "peak {} exceeds the a10g budget",
            plan.peak_memory_bytes
        ),
        Err(e) => assert!(
            matches!(e, PlanError::NoFeasibleConfig),
            "unexpected error {e:?}"
        ),
    }
    // A mixed A100 + A10G fleet still plans: stages landing on the A10G
    // machine are held to 24 GB, the A100 machine to 80 GB.
    let mixed = ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::a10g(), 1)]);
    let plan = Planner::new(zoo::stable_diffusion_v2_1(), mixed)
        .plan(256)
        .expect("mixed a100/a10g plans");
    assert!(plan.peak_memory_bytes <= DeviceClass::a100().memory_bytes);
}
