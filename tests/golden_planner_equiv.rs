//! Golden equivalence suite for the optimised planner fast path.
//!
//! The fast planner (prefix-sum cost tables, parent-pointer DPs,
//! branch-and-bound pruning, parallel config search, fill
//! short-circuiting) must produce plans *byte-identical* to the naive
//! reference loop preserved as `Planner::plan_reference`. Two layers of
//! protection:
//!
//! * `golden_summaries_match_committed_file` pins `Plan::summary()` —
//!   including the plan id / fingerprint — for every zoo model ×
//!   {8, 16, 64} devices × {64, 256} global batch against
//!   `tests/goldens/plan_summaries.txt`. Any drift in planner output
//!   fails; regenerate deliberately with `DPIPE_UPDATE_GOLDENS=1`.
//! * `fast_matches_reference_planner_end_to_end` re-derives a subset of
//!   those plans through the reference loop and compares the full plan
//!   structure, not just the summary.
//!
//! The committed goldens were produced by the reference planner; the fast
//! planner reproducing them *is* the optimisation's correctness proof.

use diffusionpipe::core::Planner;
use diffusionpipe::model::ModelSpec;
use diffusionpipe::prelude::*;

const GOLDEN_PATH: &str = "tests/goldens/plan_summaries.txt";
const DEVICE_COUNTS: [usize; 3] = [8, 16, 64];
const BATCHES: [u32; 2] = [64, 256];

fn zoo_models() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("sd", zoo::stable_diffusion_v2_1()),
        ("controlnet", zoo::controlnet_v1_0()),
        ("cdm-lsun", zoo::cdm_lsun()),
        ("cdm-imagenet", zoo::cdm_imagenet()),
        ("dit", zoo::dit_xl_2()),
        ("sdxl", zoo::sdxl_base()),
        ("imagen", zoo::imagen_base()),
    ]
}

fn cluster_for(gpus: usize) -> ClusterSpec {
    if gpus > 8 && gpus.is_multiple_of(8) {
        ClusterSpec::p4de(gpus / 8)
    } else {
        ClusterSpec::single_node(gpus)
    }
}

/// One golden line: `<model>@<gpus>gpu/b<batch>\t<OK summary | ERR error>`.
fn golden_line(name: &str, gpus: usize, batch: u32, planner: &Planner) -> String {
    match planner.plan(batch) {
        Ok(plan) => format!("{name}@{gpus}gpu/b{batch}\tOK\t{}", plan.summary()),
        Err(e) => format!("{name}@{gpus}gpu/b{batch}\tERR\t{e}"),
    }
}

/// Regeneration cross-checks the fast plan against the reference loop, so
/// the committed file always reflects the reference planner's output.
fn checked_golden_line(name: &str, gpus: usize, batch: u32, planner: &Planner) -> String {
    let line = golden_line(name, gpus, batch, planner);
    let reference = match planner.plan_reference(batch) {
        Ok(plan) => format!("{name}@{gpus}gpu/b{batch}\tOK\t{}", plan.summary()),
        Err(e) => format!("{name}@{gpus}gpu/b{batch}\tERR\t{e}"),
    };
    assert_eq!(line, reference, "fast and reference diverged during regen");
    line
}

#[test]
fn golden_summaries_match_committed_file() {
    let update = std::env::var("DPIPE_UPDATE_GOLDENS").is_ok();
    let mut lines = Vec::new();
    for (name, _model) in zoo_models() {
        for gpus in DEVICE_COUNTS {
            for batch in BATCHES {
                // The planner is built from a declarative spec — the grid
                // names *are* zoo references — so matching the committed
                // goldens proves the spec path is byte-identical to the
                // legacy builder path that produced them. Parallelism 2
                // deliberately exercises the threaded search; the output
                // is identical for any worker count.
                let spec = PlanSpec::zoo(name, cluster_for(gpus), batch).with_parallelism(2);
                // An *enabled* tracer rides along on every golden plan:
                // instrumentation must never change the selected plan, and
                // this suite is the byte-identity gate for that claim.
                let planner = Planner::from_spec(&spec)
                    .expect("golden spec resolves")
                    .with_tracer(Tracer::new());
                lines.push(if update {
                    checked_golden_line(name, gpus, batch, &planner)
                } else {
                    golden_line(name, gpus, batch, &planner)
                });
            }
        }
    }
    let rendered = format!("{}\n", lines.join("\n"));

    if update {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write goldens");
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("committed goldens present; regenerate with DPIPE_UPDATE_GOLDENS=1");
    let committed_lines: Vec<&str> = committed.lines().collect();
    assert_eq!(
        committed_lines.len(),
        lines.len(),
        "golden line count drifted"
    );
    for (got, want) in lines.iter().zip(committed_lines) {
        assert_eq!(got, want, "plan summary drifted from committed golden");
    }
}

#[test]
fn fast_matches_reference_planner_end_to_end() {
    // Full-structure equality (partition, schedule, fill, metrics) on a
    // cross-section: single-backbone small + large, bidirectional, and a
    // multi-node shape. The reference loop is slow, so the full grid is
    // covered by the summary goldens above instead.
    let cases: [(&str, ModelSpec, usize, u32); 4] = [
        ("sd", zoo::stable_diffusion_v2_1(), 8, 64),
        ("cdm-lsun", zoo::cdm_lsun(), 8, 64),
        ("dit", zoo::dit_xl_2(), 16, 256),
        ("imagen", zoo::imagen_base(), 64, 64),
    ];
    for (name, model, gpus, batch) in cases {
        let planner = Planner::new(model, cluster_for(gpus)).with_parallelism(3);
        let fast = planner.plan(batch).unwrap();
        let reference = planner.plan_reference(batch).unwrap();
        assert_eq!(
            fast.summary(),
            reference.summary(),
            "{name}@{gpus}/b{batch}"
        );
        assert_eq!(fast.hyper, reference.hyper, "{name}");
        assert_eq!(fast.partition, reference.partition, "{name}");
        assert_eq!(fast.schedule, reference.schedule, "{name}");
        assert_eq!(fast.fill, reference.fill, "{name}");
        assert_eq!(
            fast.peak_memory_bytes, reference.peak_memory_bytes,
            "{name}"
        );
    }
}

#[test]
fn spec_path_is_byte_identical_to_builder_path() {
    // Cross-section of the golden grid, planned twice: once through the
    // declarative spec (zoo reference + JSON round trip) and once through
    // the legacy builder. Full plan structure must match bit for bit.
    let cases: [(&str, ModelSpec, usize, u32); 3] = [
        ("sd", zoo::stable_diffusion_v2_1(), 8, 256),
        ("cdm-lsun", zoo::cdm_lsun(), 8, 64),
        ("sdxl", zoo::sdxl_base(), 16, 128),
    ];
    for (name, model, gpus, batch) in cases {
        let spec = PlanSpec::zoo(name, cluster_for(gpus), batch).with_parallelism(2);
        let reloaded = PlanSpec::from_json(&spec.to_json()).expect("canonical spec parses");
        let via_spec = Planner::plan_spec(&reloaded).unwrap();
        let via_builder = Planner::new(model, cluster_for(gpus))
            .with_parallelism(2)
            .plan(batch)
            .unwrap();
        assert_eq!(via_spec.summary(), via_builder.summary(), "{name}");
        assert_eq!(via_spec.hyper, via_builder.hyper, "{name}");
        assert_eq!(via_spec.partition, via_builder.partition, "{name}");
        assert_eq!(via_spec.schedule, via_builder.schedule, "{name}");
        assert_eq!(via_spec.fill, via_builder.fill, "{name}");
    }
}

#[test]
fn parallelism_never_changes_the_selected_plan() {
    let model = zoo::sdxl_base();
    let cluster = cluster_for(16);
    let baseline = Planner::new(model.clone(), cluster.clone())
        .plan(128)
        .unwrap();
    for workers in [2usize, 5, 32] {
        let plan = Planner::new(model.clone(), cluster.clone())
            .with_parallelism(workers)
            .plan(128)
            .unwrap();
        assert_eq!(plan.summary(), baseline.summary(), "workers={workers}");
        assert_eq!(plan.partition, baseline.partition, "workers={workers}");
    }
}
