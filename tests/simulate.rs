//! End-to-end contracts for the fault-injecting simulator: the `dpipe
//! simulate` document is deterministic byte-for-byte, the HTTP endpoint
//! serves exactly that document, and a node drop yields a re-plan whose
//! migration diff really is a constructive edit script.

use diffusionpipe::core::{simulate_plan, stage_layouts, FaultSpec, PlanError};
use diffusionpipe::http::{HttpClient, HttpServer, ServerConfig};
use diffusionpipe::serve::json::simulate_response_doc;
use diffusionpipe::serve::{PlanRequest, PlanService, ServiceConfig};
use diffusionpipe::spec::PlanSpec;
use diffusionpipe::trace::Tracer;

const SPEC_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/specs");

fn load_spec(name: &str) -> PlanSpec {
    let text = std::fs::read_to_string(format!("{SPEC_DIR}/{name}")).expect("committed spec");
    PlanSpec::from_json(&text).expect("spec parses")
}

fn load_faults(name: &str) -> FaultSpec {
    let text = std::fs::read_to_string(format!("{SPEC_DIR}/{name}")).expect("committed faults");
    FaultSpec::from_json(&text).expect("fault spec parses")
}

/// The document `dpipe simulate --json` prints for a spec + fault pair,
/// built exactly the way the CLI builds it.
fn cli_document(spec: &PlanSpec, faults: &FaultSpec) -> String {
    let tracer = Tracer::off();
    let request = PlanRequest::from_spec(spec.clone()).expect("request");
    let workers = spec.effective_parallelism();
    let plan = request.plan_traced(workers, &tracer, None).expect("plan");
    let outcome = simulate_plan(spec, &plan, faults, &tracer, None, |degraded| {
        PlanRequest::from_spec(degraded.clone())
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?
            .plan_traced(workers, &tracer, None)
    })
    .expect("simulate");
    format!(
        "{}\n",
        simulate_response_doc(spec, &request, faults, &outcome)
    )
}

/// Drops the server-only trailing `"timing"` object an HTTP response
/// carries on top of the shared document.
fn strip_timing(body: &str) -> String {
    let cut = body.rfind(",\"timing\":").expect("timing field present");
    format!("{}}}\n", &body[..cut])
}

#[test]
fn simulate_json_is_byte_identical_for_same_spec_and_seed() {
    let spec = load_spec("sd_8gpu_b256.json");
    let faults = load_faults("faults_straggler.json");
    let first = cli_document(&spec, &faults);
    let second = cli_document(&spec, &faults);
    assert_eq!(
        first, second,
        "same spec + seed must render byte-identically"
    );
    // The service path (single-flight cache, shared workers) must agree
    // with the direct path to the last byte, or CLI and server answers
    // would drift apart.
    let service = PlanService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let request = PlanRequest::from_spec(spec.clone()).expect("request");
    let response = service.simulate_traced(&request, &faults, 1, None);
    let outcome = response.outcome.expect("service simulate");
    let doc = format!(
        "{}\n",
        simulate_response_doc(&spec, &request, &faults, &outcome)
    );
    assert_eq!(first, doc, "service and direct documents must match");
}

#[test]
fn http_simulate_is_byte_identical_to_the_cli_document() {
    let spec = load_spec("sd_8gpu_b256.json");
    let faults = load_faults("faults_straggler.json");
    let expected = cli_document(&spec, &faults);
    let server = HttpServer::start(ServerConfig::default()).expect("bind");
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let body = format!(
        "{{\"spec\":{},\"faults\":{}}}",
        spec.to_json(),
        faults.to_json()
    );
    for _ in 0..2 {
        let response = client
            .request("POST", "/simulate", body.as_bytes())
            .expect("request");
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(strip_timing(&response.text()), expected);
    }
}

#[test]
fn node_drop_replans_and_the_migration_diff_round_trips() {
    let spec = load_spec("sd_64gpu_b256.json");
    let faults = load_faults("faults_nodedrop.json");
    let tracer = Tracer::off();
    let request = PlanRequest::from_spec(spec.clone()).expect("request");
    let workers = spec.effective_parallelism();
    let plan = request.plan_traced(workers, &tracer, None).expect("plan");
    let outcome = simulate_plan(&spec, &plan, &faults, &tracer, None, |degraded| {
        PlanRequest::from_spec(degraded.clone())
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?
            .plan_traced(workers, &tracer, None)
    })
    .expect("simulate");

    assert!(
        !outcome.report.dropped_devices.is_empty(),
        "the node drop must strand devices"
    );
    let replan = outcome.replan.as_ref().expect("node drop must re-plan");
    assert!(replan.surviving_world < spec.cluster.world_size());
    assert!(
        replan.recovered_throughput > 0.0,
        "the degraded cluster must still train"
    );

    // The diff is constructive: applying it to the failed plan's layout
    // reproduces the re-plan's layout exactly.
    let old = stage_layouts(&plan);
    let new = stage_layouts(&replan.plan);
    assert_eq!(
        replan.diff.apply(&old),
        new,
        "MigrationDiff::apply(old) must equal the re-planned layout"
    );
    // And every retired device really belonged to the dropped machine.
    for device in &replan.diff.devices_retired {
        assert!(
            outcome.report.dropped_devices.contains(device),
            "retired device {device} was never dropped"
        );
    }
}
