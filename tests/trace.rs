//! Integration tests for the end-to-end tracing layer: the Chrome
//! trace-event export must be valid JSON with the planner's phase spans on
//! it, the root `plan` span must be almost entirely covered by its phase
//! children (no untraced gaps), and — the invariant everything else leans
//! on — attaching a tracer must never change the selected plan.

use diffusionpipe::prelude::*;
use diffusionpipe::spec::json::{parse, JsonValue};

fn committed_spec() -> PlanSpec {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/sd_8gpu_b256.json"
    ))
    .expect("committed sd spec");
    PlanSpec::from_json(&text).expect("committed spec parses")
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let spec = committed_spec();
    let tracer = Tracer::new();
    let request = PlanRequest::from_spec(spec).expect("spec resolves");
    request
        .plan_traced(1, &tracer, None)
        .expect("committed spec plans");
    let trace = tracer.take();
    assert!(!trace.is_empty());

    let doc = parse(&trace.to_chrome_json()).expect("chrome export parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.len());
    for event in events {
        // Complete events: the fields chrome://tracing and Perfetto demand.
        assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert!(event.get("name").and_then(JsonValue::as_str).is_some());
        assert!(event.get("ts").and_then(JsonValue::as_u64).is_some());
        assert!(event.get("dur").and_then(JsonValue::as_u64).is_some());
        assert!(event.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(event.get("tid").and_then(JsonValue::as_u64).is_some());
        assert!(event.get("args").and_then(|a| a.get("span_id")).is_some());
    }
    // The planner phases are all on the timeline.
    for name in [
        "plan",
        "validate",
        "profile",
        "enumerate_configs",
        "cost_prefixes",
        "config_search",
        "config",
        "partition",
        "schedule",
        "select",
    ] {
        assert!(trace.find(name).is_some(), "span {name} missing");
    }
}

#[test]
fn plan_span_is_covered_by_phase_children() {
    let tracer = Tracer::new();
    let request = PlanRequest::from_spec(committed_spec()).expect("spec resolves");
    request
        .plan_traced(1, &tracer, None)
        .expect("committed spec plans");
    let trace = tracer.take();
    let plan_span = trace.find("plan").expect("plan span");
    let coverage = trace.child_coverage(plan_span.id);
    assert!(
        coverage >= 0.95,
        "plan span must be >=95% covered by phase children, got {:.1}%",
        coverage * 100.0
    );
    // The same holds one level down: the config search is covered by the
    // per-config spans it fans out.
    let search = trace.find("config_search").expect("config_search span");
    let search_coverage = trace.child_coverage(search.id);
    assert!(
        search_coverage >= 0.90,
        "config_search coverage {:.1}%",
        search_coverage * 100.0
    );
}

#[test]
fn tracing_never_changes_the_selected_plan() {
    let spec = committed_spec();
    let untraced = Planner::plan_spec(&spec).expect("untraced plan");
    let tracer = Tracer::new();
    let request = PlanRequest::from_spec(spec).expect("spec resolves");
    let traced = request.plan_traced(1, &tracer, None).expect("traced plan");
    assert_eq!(traced.summary(), untraced.summary());
    assert_eq!(traced.hyper, untraced.hyper);
    assert_eq!(traced.partition, untraced.partition);
    assert_eq!(traced.schedule, untraced.schedule);
    assert_eq!(traced.fill, untraced.fill);
    assert_eq!(traced.peak_memory_bytes, untraced.peak_memory_bytes);
    // The trace really was recorded (it is not equality-by-no-op).
    assert!(tracer.take().len() > 10);
}

#[test]
fn parallel_search_produces_one_connected_trace() {
    let tracer = Tracer::new();
    let request = PlanRequest::from_spec(committed_spec()).expect("spec resolves");
    request
        .plan_traced(3, &tracer, None)
        .expect("committed spec plans");
    let trace = tracer.take();
    // Every config span is parented under the one config_search span, even
    // though they ran on scoped worker threads.
    let search = trace.find("config_search").expect("config_search span");
    let configs: Vec<_> = trace.spans_named("config").collect();
    assert!(!configs.is_empty());
    assert!(configs.iter().all(|c| c.parent == Some(search.id)));
    // More than one worker thread actually recorded spans.
    let threads: std::collections::HashSet<u64> = configs.iter().map(|c| c.thread).collect();
    assert!(
        threads.len() > 1,
        "expected config spans from multiple workers, got {threads:?}"
    );
}
