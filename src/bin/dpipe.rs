//! `dpipe` — command-line front end for the DiffusionPipe planner.
//!
//! ```text
//! dpipe plan --model sd --machines 1 --gpus 8 --batch 256 [--no-fill] [--no-partial] [--timeline]
//! dpipe plan --spec examples/specs/sd_8gpu_b256.json
//! dpipe plan --model sd --batch 256 --emit-spec | dpipe plan --spec -
//! dpipe models
//! dpipe baselines --model controlnet --machines 4 --batch 1024
//! dpipe serve --requests plans.txt --workers 4
//! dpipe sweep --models sd,dit --gpus 4,8 --batches 128,256 --workers 4
//! dpipe sweep --spec sweep.json
//! ```
//!
//! Every `plan`/`sweep` run is reproducible as data: `--emit-spec` prints
//! the fully-resolved declarative spec (`PlanSpec`/`SweepSpec` JSON) for
//! any flag combination, and `--spec <file|->` executes such a document.

use diffusionpipe::baselines::{ddp, gpipe, spp, zero3};
use diffusionpipe::core::{
    generate_instructions, render_sim_timeline, simulate_plan, BackbonePartition, FaultSpec,
    PlanError, Planner, PlannerOptions,
};
use diffusionpipe::partition::SearchSpace;
use diffusionpipe::prelude::*;
use diffusionpipe::schedule::render_timeline;
use diffusionpipe::serve::json::{plan_json, JsonValue};
use diffusionpipe::spec::{ClusterAxis, ModelRef, PlanSpec, SweepSpec};
use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;

const USAGE: &str = "\
dpipe — DiffusionPipe planner (MLSys 2024 reproduction)

USAGE:
  dpipe models
      List the model zoo.
  dpipe plan --model <name> [--machines N|SPEC] [--gpus-per-machine N]
             [--batch N] [--workers N] [--no-fill] [--no-partial]
             [--timeline] [--instructions] [--json] [--emit-spec]
             [--trace FILE] [--trace-tree]
  dpipe plan --spec <file|-> [--batch N] [--workers N] [--no-fill]
             [--no-partial] [--timeline] [--instructions] [--json]
             [--emit-spec] [--trace FILE] [--trace-tree]
      Plan training and print the chosen configuration. The per-config
      search fans across --workers threads (default: all cores); the plan
      is identical for any worker count. --machines takes a count (all
      machines A100-class) or a mixed-fleet spec like `a100:4,h100:4`
      (classes: a100, h100, a10g). --spec executes a declarative PlanSpec
      JSON document ('-' reads stdin); run-local knobs (--batch, --workers,
      --no-fill, --no-partial) override the document, while
      --model/--machines with --spec are rejected. --emit-spec prints the
      resolved spec instead of planning, so any flag combination
      round-trips through `--emit-spec | dpipe plan --spec -`.
      --trace FILE records every planner phase (validate, profile,
      enumerate, per-config partition DP, schedule, fill, select) as a
      Chrome trace-event JSON file — open it in Perfetto or
      chrome://tracing. --trace-tree prints the same spans as an indented
      tree on stderr (plan output stays on stdout).
  dpipe baselines --model <name> [--machines N|SPEC] [--gpus-per-machine N]
             [--batch N]
      Compare DiffusionPipe against DDP / ZeRO-3 / GPipe / SPP.
  dpipe simulate --spec <file|-> [--faults <file|->] [--timeline] [--json]
             [--workers N] [--trace FILE] [--trace-tree]
      Plan the spec, then replay the plan instruction-by-instruction under
      a fault spec (stragglers, degraded links, node drops) through the
      discrete-event simulator. With no --faults the replay is fault-free
      and must match the planner's predicted iteration time. The fault
      spec is seeded JSON: the same spec + faults always produce the same
      report, byte for byte. Node drops additionally re-plan on the
      surviving cluster and print the stage migration diff. --timeline
      renders the degraded per-slot Gantt chart; --json prints the exact
      `POST /simulate` response document.
  dpipe serve --requests <file|-> [--workers N] [--json]
      Batch-serve planning requests through the worker pool + plan cache.
      One request per line: model=<name> [machines=N|SPEC] [gpus=N]
      [batch=N] [fill=on|off] [partial=on|off]; '#' starts a comment.
      '-' reads stdin.
  dpipe serve --listen <addr> [--workers N] [--conn-workers N] [--queue N]
             [--max-in-flight N] [--max-body BYTES] [--read-timeout-ms MS]
             [--rate N] [--burst N] [--cache-capacity N]
             [--trace-dir DIR] [--trace-sample N]
      Serve the planner over HTTP/1.1 (std::net, no external deps) until
      `POST /shutdown` (graceful drain). Endpoints: POST /plan (PlanSpec
      JSON in, the exact `dpipe plan --json --spec` document out),
      POST /simulate ({\"spec\": PlanSpec, \"faults\": FaultSpec} in, the
      exact `dpipe simulate --json` document out), POST /sweep (SweepSpec
      JSON), GET /metrics, GET /healthz. A full
      connection queue or plan backlog sheds load as 503; bodies over
      --max-body get 413; --rate enables per-client token-bucket limiting
      (429). `--listen 127.0.0.1:0` picks an ephemeral port and prints it.
      --trace-dir writes one Chrome trace-event file per request (accept →
      queue wait → parse → cache/plan → write); --trace-sample N keeps
      every Nth request (default 1 = all). GET /metrics?format=prometheus
      serves the counters in Prometheus text exposition format.
  dpipe sweep --models <a,b,..> [--gpus <n,..>] [--machines <spec;..>]
             [--batches <n,..>] [--workers N] [--best] [--json]
             [--no-fill] [--no-partial] [--emit-spec]
  dpipe sweep --spec <file|-> [--workers N] [--best] [--json] [--emit-spec]
      Fan a cartesian configuration grid across the worker pool and print
      the ranked report. The cluster axis combines --gpus counts with
      --machines mixed-fleet specs (';'-separated, e.g.
      `a100:4,h100:4;a10g:8`). --spec executes a declarative SweepSpec
      JSON document; --emit-spec prints the resolved sweep spec.

Models: sd, controlnet, cdm-lsun, cdm-imagenet, dit, sdxl, imagen
";

fn model_by_name(name: &str) -> Option<ModelSpec> {
    zoo::by_name(name)
}

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(name.to_owned(), argv[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { flags, switches }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Builds a cluster from a machine spec: a bare count (`4`, homogeneous
/// A100-class) or a per-class list (`a100:4,h100:4`).
fn cluster_from_spec(spec: &str, gpus: usize) -> Result<ClusterSpec, String> {
    if let Ok(machines) = spec.parse::<usize>() {
        return Ok(ClusterSpec {
            devices_per_machine: gpus,
            ..ClusterSpec::p4de(machines.max(1))
        });
    }
    let classes = DeviceClass::parse_machine_spec(spec)?;
    Ok(ClusterSpec {
        devices_per_machine: gpus,
        machine_classes: classes.clone(),
        ..ClusterSpec::p4de(classes.len())
    })
}

fn cluster_from(args: &Args) -> Result<ClusterSpec, String> {
    let gpus: usize = args.get("gpus-per-machine", 8);
    let spec = args.flags.get("machines").map_or("1", String::as_str);
    cluster_from_spec(spec, gpus).map_err(|e| format!("--machines: {e}"))
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "name", "backbones", "train params", "frozen params", "frozen L"
    );
    for name in zoo::NAMES {
        // dpipe-analyze: allow(no-panic) -- iterating zoo::NAMES, each of which model_by_name resolves by construction
        let m = model_by_name(name).expect("known name");
        println!(
            "{:<14} {:>10} {:>11.2}B {:>11.2}B {:>10}",
            name,
            m.backbones().count(),
            m.trainable_param_count() as f64 / 1e9,
            m.frozen_param_count() as f64 / 1e9,
            m.num_frozen_layers()
        );
    }
    ExitCode::SUCCESS
}

/// Reads a `--spec` source: a file path or `-` for stdin.
fn read_spec_source(source: &str) -> Result<String, String> {
    if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin failed: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("reading {source} failed: {e}"))
    }
}

/// Resolves the flags of one `dpipe plan` invocation into the declarative
/// spec it is equivalent to — the single path both planning and
/// `--emit-spec` go through, so what gets emitted is exactly what runs.
fn spec_from_plan_args(args: &Args) -> Result<PlanSpec, String> {
    if let Some(source) = args.flags.get("spec") {
        // The document is authoritative for the planning inputs; flags that
        // would silently contradict it are rejected, while run-local knobs
        // (--workers, --batch, the ablation switches) override it — and
        // --emit-spec shows exactly what the merge resolved to.
        for conflicting in ["model", "machines", "gpus-per-machine"] {
            if args.flags.contains_key(conflicting) {
                return Err(format!(
                    "--{conflicting} cannot be combined with --spec; edit the spec \
                     file (or regenerate it with --emit-spec)"
                ));
            }
        }
        let mut spec =
            PlanSpec::from_json(&read_spec_source(source)?).map_err(|e| e.to_string())?;
        if let Some(workers) = args.flags.get("workers") {
            spec.parallelism = workers
                .parse()
                .map_err(|_| format!("bad --workers `{workers}`"))?;
        }
        if let Some(batch) = args.flags.get("batch") {
            spec.global_batch = batch
                .parse()
                .map_err(|_| format!("bad --batch `{batch}`"))?;
        }
        if args.has("no-fill") {
            spec.options.bubble_filling = false;
        }
        if args.has("no-partial") {
            spec.options.partial_batch = false;
        }
        return Ok(spec);
    }
    let model_name = args
        .flags
        .get("model")
        .ok_or("unknown or missing --model; run `dpipe models`")?;
    if model_by_name(model_name).is_none() {
        return Err(format!("unknown model `{model_name}`; run `dpipe models`"));
    }
    let cluster = cluster_from(args)?;
    let batch: u32 = args.get("batch", 32 * cluster.world_size() as u32);
    Ok(PlanSpec::zoo(model_name.clone(), cluster, batch)
        .with_options(PlannerOptions {
            bubble_filling: !args.has("no-fill"),
            partial_batch: !args.has("no-partial"),
        })
        // 0 = "all cores", the CLI default, kept symbolic so an emitted
        // spec reproduces on any machine.
        .with_parallelism(args.get("workers", 0)))
}

fn cmd_plan(args: &Args) -> ExitCode {
    let spec = match spec_from_plan_args(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("emit-spec") {
        println!("{}", spec.to_json());
        return ExitCode::SUCCESS;
    }
    let request = match PlanRequest::from_spec(spec.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let batch = request.global_batch();
    let cluster = request.cluster().clone();
    // `--trace FILE` / `--trace-tree` attach a collector to the planner;
    // without them the tracer is off and planning runs exactly as before
    // (plans are byte-identical either way).
    let trace_file = args.flags.get("trace").cloned();
    let trace_tree = args.has("trace-tree");
    let tracer = if trace_file.is_some() || trace_tree {
        diffusionpipe::trace::Tracer::new()
    } else {
        diffusionpipe::trace::Tracer::off()
    };
    let plan = match request.plan_traced(spec.effective_parallelism(), &tracer, None) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if tracer.is_enabled() {
        let trace = tracer.take();
        if let Some(path) = trace_file {
            if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                eprintln!("writing trace to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} spans to {path} (open in Perfetto or chrome://tracing)",
                trace.len()
            );
        }
        if trace_tree {
            eprint!("{}", trace.render_tree());
        }
    }
    if args.has("json") {
        // One shared document with `POST /plan` over HTTP, so the two
        // paths stay byte-identical (see `dpipe_serve::json`).
        let doc = diffusionpipe::serve::json::plan_response_doc(&spec, &request, &plan);
        println!("{doc}");
        return ExitCode::SUCCESS;
    }
    println!("plan for batch {batch} on {} GPUs:", cluster.world_size());
    println!("  {}", plan.summary());
    match &plan.partition {
        BackbonePartition::Single(p) => {
            for (i, s) in p.stages.iter().enumerate() {
                println!(
                    "  stage {i}: layers {:?} x{} (offsets {:?})",
                    s.layers, s.replication, s.device_offsets
                );
            }
        }
        BackbonePartition::Bidirectional(bi) => {
            println!(
                "  down: {:?}",
                bi.down
                    .stages
                    .iter()
                    .map(|s| s.layers.clone())
                    .collect::<Vec<_>>()
            );
            println!(
                "  up  : {:?}",
                bi.up
                    .stages
                    .iter()
                    .map(|s| s.layers.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
    println!(
        "  fill: {:.0} ms in bubbles / {:.0} ms tail / ratio {:.0}%",
        plan.fill.filled_time() * 1e3,
        plan.fill.leftover_time * 1e3,
        plan.fill.fill_ratio() * 100.0
    );
    if args.has("timeline") && plan.hyper.num_stages > 1 {
        println!("\n{}", render_timeline(&plan.schedule, 100));
    }
    if args.has("instructions") {
        let streams = generate_instructions(&plan);
        for (slot, prog) in streams.iter().enumerate() {
            println!("\ndevice slot {slot} ({} instructions):", prog.len());
            for instr in prog.iter().take(12) {
                println!("  {instr:?}");
            }
            if prog.len() > 12 {
                println!("  ... {} more", prog.len() - 12);
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_baselines(args: &Args) -> ExitCode {
    let Some(model) = args.flags.get("model").and_then(|n| model_by_name(n)) else {
        eprintln!("unknown or missing --model; run `dpipe models`");
        return ExitCode::FAILURE;
    };
    let cluster = match cluster_from(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let batch: u32 = args.get("batch", 32 * cluster.world_size() as u32);
    let plan = Planner::new(model.clone(), cluster.clone()).plan(batch);
    let db = Profiler::new(DeviceModel::a100_like())
        .with_world_size(cluster.world_size())
        .profile(&model, batch)
        .0;
    println!("{:<16} {:>12} {:>10}", "system", "samples/s", "bubbles");
    if let Ok(p) = &plan {
        println!(
            "{:<16} {:>12.1} {:>9.1}%",
            "diffusionpipe",
            p.throughput,
            p.bubble_ratio * 100.0
        );
    }
    if let Some((bb, _)) = model.backbones().next().map(|(id, c)| (id, c.name.clone())) {
        if let Ok(r) = spp(&db, &cluster, bb, batch, &SearchSpace::default()) {
            println!(
                "{:<16} {:>12.1} {:>9.1}%",
                r.name,
                r.throughput,
                r.bubble_ratio * 100.0
            );
        }
        if let Ok(r) = gpipe(&db, &cluster, bb, batch, 2, 4) {
            println!(
                "{:<16} {:>12.1} {:>9.1}%",
                r.name,
                r.throughput,
                r.bubble_ratio * 100.0
            );
        }
    }
    let r = ddp(&db, &cluster, batch);
    println!(
        "{:<16} {:>12.1} {:>9.1}%",
        r.name,
        r.throughput,
        r.bubble_ratio * 100.0
    );
    let r = zero3(&db, &cluster, batch);
    println!(
        "{:<16} {:>12.1} {:>9.1}%",
        r.name,
        r.throughput,
        r.bubble_ratio * 100.0
    );
    ExitCode::SUCCESS
}

/// `dpipe simulate`: plan a spec, replay it under a fault spec through the
/// discrete-event simulator, and report the degraded timeline plus (on
/// node drops) the re-plan on the surviving cluster.
fn cmd_simulate(args: &Args) -> ExitCode {
    let Some(source) = args.flags.get("spec") else {
        eprintln!("missing --spec <file|-> (emit one with `dpipe plan ... --emit-spec`)");
        return ExitCode::FAILURE;
    };
    let mut spec = match read_spec_source(source)
        .and_then(|t| PlanSpec::from_json(&t).map_err(|e| e.to_string()))
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(workers) = args.flags.get("workers") {
        let Ok(parallelism) = workers.parse() else {
            eprintln!("bad --workers `{workers}`");
            return ExitCode::FAILURE;
        };
        spec.parallelism = parallelism;
    }
    let faults = match args.flags.get("faults") {
        Some(src) => match read_spec_source(src)
            .and_then(|t| FaultSpec::from_json(&t).map_err(|e| e.to_string()))
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultSpec::none(),
    };
    let request = match PlanRequest::from_spec(spec.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let trace_file = args.flags.get("trace").cloned();
    let trace_tree = args.has("trace-tree");
    let tracer = if trace_file.is_some() || trace_tree {
        diffusionpipe::trace::Tracer::new()
    } else {
        diffusionpipe::trace::Tracer::off()
    };
    let parallelism = spec.effective_parallelism();
    let plan = match request.plan_traced(parallelism, &tracer, None) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match simulate_plan(&spec, &plan, &faults, &tracer, None, |degraded| {
        PlanRequest::from_spec(degraded.clone())
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?
            .plan_traced(parallelism, &tracer, None)
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if tracer.is_enabled() {
        let trace = tracer.take();
        if let Some(path) = trace_file {
            if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                eprintln!("writing trace to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} spans to {path} (open in Perfetto or chrome://tracing)",
                trace.len()
            );
        }
        if trace_tree {
            eprint!("{}", trace.render_tree());
        }
    }
    if args.has("json") {
        // One shared document with `POST /simulate` over HTTP, so the two
        // surfaces stay byte-identical (see `dpipe_serve::json`).
        let doc =
            diffusionpipe::serve::json::simulate_response_doc(&spec, &request, &faults, &outcome);
        println!("{doc}");
        return ExitCode::SUCCESS;
    }
    let r = &outcome.report;
    println!(
        "simulated {} on {} GPUs ({} machines, {} DP groups):",
        request.model().name,
        r.world_size,
        r.num_machines,
        r.dp_groups
    );
    println!(
        "  predicted iteration {:.2} ms, fault-free replay {:.2} ms",
        r.predicted_iteration * 1e3,
        r.simulated_iteration * 1e3
    );
    if faults.is_empty() {
        println!("  no faults injected");
    } else {
        println!(
            "  faults (seed {}): {} straggler(s), {} link fault(s), {} node drop(s)",
            faults.seed,
            faults.stragglers.len(),
            faults.links.len(),
            faults.node_drops.len()
        );
    }
    match (r.degraded_iteration, r.degraded_throughput) {
        (Some(iteration), Some(throughput)) => println!(
            "  degraded iteration {:.2} ms, {:.1} samples/s ({:+.1}% vs baseline {:.1})",
            iteration * 1e3,
            throughput,
            r.throughput_delta.unwrap_or(0.0) * 100.0,
            r.baseline_throughput
        ),
        _ => println!(
            "  iteration did not complete: {} device(s) dropped, {} stranded \
             ({}/{} instructions ran, makespan {:.2} ms)",
            r.dropped_devices.len(),
            r.stranded_devices.len(),
            r.completed_instructions,
            r.total_instructions,
            r.makespan * 1e3
        ),
    }
    if let Some(rp) = &outcome.replan {
        println!(
            "  re-plan on {} surviving devices ({} machines): {} stage(s) moved, \
             {} layer(s) reassigned, {} device(s) retired",
            rp.surviving_world,
            rp.surviving_machines,
            rp.diff.stages_moved,
            rp.diff.layers_reassigned,
            rp.diff.devices_retired.len()
        );
        println!(
            "  recovered throughput {:.1} samples/s ({:.0}% of baseline)",
            rp.recovered_throughput,
            rp.recovery_ratio * 100.0
        );
    }
    if args.has("timeline") {
        println!("\n{}", render_sim_timeline(&outcome));
    }
    ExitCode::SUCCESS
}

/// Parses one `serve` request line: whitespace-separated `key=value` tokens
/// (`model=` mandatory; `machines` — a count or an `a100:4,h100:4`-style
/// class spec — `gpus`, `batch`, `fill`, `partial` optional).
fn parse_request_line(line: &str) -> Result<PlanRequest, String> {
    let mut model: Option<ModelSpec> = None;
    let mut machines = "1".to_owned();
    let mut gpus = 8usize;
    let mut batch: Option<u32> = None;
    let mut options = PlannerOptions::default();
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{token}`"))?;
        match key {
            "model" => {
                model =
                    Some(model_by_name(value).ok_or_else(|| format!("unknown model `{value}`"))?);
            }
            "machines" => machines = value.to_owned(),
            "gpus" => gpus = value.parse().map_err(|_| format!("bad gpus `{value}`"))?,
            "batch" => batch = Some(value.parse().map_err(|_| format!("bad batch `{value}`"))?),
            "fill" => options.bubble_filling = parse_switch(value)?,
            "partial" => options.partial_batch = parse_switch(value)?,
            _ => return Err(format!("unknown key `{key}`")),
        }
    }
    let model = model.ok_or_else(|| "missing model=<name>".to_owned())?;
    let cluster = cluster_from_spec(&machines, gpus).map_err(|e| format!("machines: {e}"))?;
    let batch = batch.unwrap_or(32 * cluster.world_size() as u32);
    Ok(PlanRequest::new(model, cluster, batch).with_options(options))
}

fn parse_switch(value: &str) -> Result<bool, String> {
    match value {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        _ => Err(format!("expected on/off, got `{value}`")),
    }
}

/// `dpipe serve --listen`: the HTTP frontend, running until a
/// `POST /shutdown` drains it.
fn cmd_serve_http(args: &Args, listen: &str) -> ExitCode {
    let defaults = diffusionpipe::http::ServerConfig::default();
    let rate: f64 = args.get("rate", 0.0);
    let config = diffusionpipe::http::ServerConfig {
        addr: listen.to_owned(),
        conn_workers: args.get("conn-workers", defaults.conn_workers),
        queue_capacity: args.get("queue", defaults.queue_capacity),
        max_in_flight_plans: args.get("max-in-flight", defaults.max_in_flight_plans),
        limits: diffusionpipe::http::Limits {
            max_body_bytes: args.get("max-body", defaults.limits.max_body_bytes),
            read_timeout: std::time::Duration::from_millis(args.get("read-timeout-ms", 10_000)),
            ..defaults.limits
        },
        rate_per_s: rate,
        rate_burst: args.get("burst", (2.0 * rate).max(1.0)),
        trace_dir: args.flags.get("trace-dir").map(std::path::PathBuf::from),
        trace_sample: args.get("trace-sample", defaults.trace_sample),
        failpoint: None,
        service: ServiceConfig {
            workers: args.get("workers", ServiceConfig::default().workers),
            cache_capacity: args.get("cache-capacity", ServiceConfig::default().cache_capacity),
            ..ServiceConfig::default()
        },
    };
    if let Some(dir) = &config.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("creating trace dir {} failed: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let server = match diffusionpipe::http::HttpServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("binding {listen} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", server.local_addr());
    // The CI smoke test backgrounds this process and greps the line above
    // from a redirected (block-buffered) stdout — flush it out now.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.run_until_shutdown();
    println!("drained; bye");
    ExitCode::SUCCESS
}

fn cmd_serve(args: &Args) -> ExitCode {
    if let Some(listen) = args.flags.get("listen") {
        return cmd_serve_http(args, &listen.clone());
    }
    let Some(source) = args.flags.get("requests") else {
        eprintln!("missing --requests <file|-> (or --listen <addr> for HTTP)");
        return ExitCode::FAILURE;
    };
    let text = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("reading stdin failed: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading {source} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_request_line(line) {
            Ok(r) => requests.push(r),
            Err(e) => {
                eprintln!("line {}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if requests.is_empty() {
        eprintln!("no requests in {source}");
        return ExitCode::FAILURE;
    }
    let workers: usize = args.get("workers", ServiceConfig::default().workers);
    let service = PlanService::new(ServiceConfig::with_workers(workers));
    let start = std::time::Instant::now();
    let responses = service.plan_batch(requests);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = service.cache_stats();
    if args.has("json") {
        let items = responses
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("request".to_owned(), JsonValue::Str(r.label.clone())),
                    (
                        "fingerprint".to_owned(),
                        JsonValue::Str(format!("{:016x}", r.fingerprint)),
                    ),
                    ("cache_hit".to_owned(), JsonValue::Bool(r.cache_hit)),
                ];
                match &r.outcome {
                    Ok(plan) => fields.push(("plan".to_owned(), plan_json(plan))),
                    Err(e) => fields.push(("error".to_owned(), JsonValue::Str(e.to_string()))),
                }
                JsonValue::Object(fields)
            })
            .collect();
        let doc = JsonValue::Object(vec![
            ("workers".to_owned(), JsonValue::UInt(workers as u64)),
            ("elapsed_s".to_owned(), JsonValue::Num(elapsed)),
            ("cache_hits".to_owned(), JsonValue::UInt(stats.hits)),
            ("cache_misses".to_owned(), JsonValue::UInt(stats.misses)),
            ("responses".to_owned(), JsonValue::Array(items)),
        ]);
        println!("{doc}");
        return ExitCode::SUCCESS;
    }
    for r in &responses {
        match &r.outcome {
            Ok(plan) => println!(
                "{:<36} {} {}",
                r.label,
                if r.cache_hit { "[hit] " } else { "[plan]" },
                plan.summary()
            ),
            Err(e) => println!("{:<36} [fail] {e}", r.label),
        }
    }
    println!(
        "\n{} requests in {:.2}s with {} workers ({:.1} plans/s, cache {}/{} hits)",
        responses.len(),
        elapsed,
        workers,
        responses.len() as f64 / elapsed.max(1e-9),
        stats.hits,
        stats.hits + stats.misses,
    );
    ExitCode::SUCCESS
}

/// Parses `a,b,c` into typed values.
fn parse_list<T: std::str::FromStr>(raw: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad value `{s}`")))
        .collect()
}

/// Resolves the flags of one `dpipe sweep` invocation into the declarative
/// sweep spec it is equivalent to (shared by execution and `--emit-spec`).
fn sweep_spec_from_args(args: &Args) -> Result<SweepSpec, String> {
    if let Some(source) = args.flags.get("spec") {
        return SweepSpec::from_json(&read_spec_source(source)?).map_err(|e| e.to_string());
    }
    let model_names = args
        .flags
        .get("models")
        .ok_or("missing --models <a,b,..>; run `dpipe models`")?;
    let mut models = Vec::new();
    for name in model_names.split(',').filter(|s| !s.is_empty()) {
        if model_by_name(name).is_none() {
            return Err(format!("unknown model `{name}`; run `dpipe models`"));
        }
        models.push(ModelRef::Zoo(name.to_owned()));
    }
    // The 8-GPU default applies only when no cluster axis is given at all:
    // a sweep asked to cover mixed fleets via --machines must not silently
    // grow an extra homogeneous point.
    let gpus_default = if args.flags.contains_key("machines") {
        ""
    } else {
        "8"
    };
    let mut clusters: Vec<ClusterAxis> =
        parse_list::<usize>(args.flags.get("gpus").map_or(gpus_default, String::as_str))
            .map_err(|e| format!("--gpus: {e}"))?
            .into_iter()
            .map(ClusterAxis::GpuCount)
            .collect();
    // Mixed-fleet axis points: ';'-separated machine specs, each validated
    // here so typos fail before any planning starts.
    if let Some(machine_specs) = args.flags.get("machines") {
        for spec in machine_specs.split(';').filter(|s| !s.is_empty()) {
            DeviceClass::parse_machine_spec(spec).map_err(|e| format!("--machines: {e}"))?;
            clusters.push(ClusterAxis::MachineClasses(spec.to_owned()));
        }
    }
    let batches = parse_list::<u32>(args.flags.get("batches").map_or("128,256", String::as_str))
        .map_err(|e| format!("--batches: {e}"))?;
    let template_model = models
        .first()
        .cloned()
        .unwrap_or_else(|| ModelRef::Zoo("sd".to_owned()));
    let template_cluster = clusters
        .first()
        .map(|c| c.resolve().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or_else(|| SweepGrid::cluster_for(8));
    let template = PlanSpec::new(
        template_model,
        template_cluster,
        batches.first().copied().unwrap_or(64),
    )
    .with_options(PlannerOptions {
        bubble_filling: !args.has("no-fill"),
        partial_batch: !args.has("no-partial"),
    });
    Ok(SweepSpec::new(template)
        .with_models(models)
        .with_clusters(clusters)
        .with_batches(batches))
}

fn cmd_sweep(args: &Args) -> ExitCode {
    let sweep = match sweep_spec_from_args(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("emit-spec") {
        println!("{}", sweep.to_json());
        return ExitCode::SUCCESS;
    }
    let grid = SweepGrid::from_spec(sweep);
    if grid.is_empty() {
        eprintln!("empty sweep grid");
        return ExitCode::FAILURE;
    }
    let workers: usize = args.get("workers", ServiceConfig::default().workers);
    let service = PlanService::new(ServiceConfig::with_workers(workers));
    let start = std::time::Instant::now();
    let report = match grid.run(&service) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed().as_secs_f64();
    if args.has("json") {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    if args.has("best") {
        for p in report.best_per_model() {
            // dpipe-analyze: allow(no-panic) -- best_per_model only yields entries whose outcome is a feasible plan
            let plan = p.outcome.as_ref().expect("best_per_model is feasible");
            println!("{:<36} {}", p.coords(), plan.summary());
        }
    } else {
        print!("{}", report.render_text());
    }
    println!(
        "\n{} grid points in {:.2}s with {} workers ({:.1} plans/s)",
        report.points.len(),
        elapsed,
        workers,
        report.points.len() as f64 / elapsed.max(1e-9),
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "models" => cmd_models(),
        "plan" => cmd_plan(&args),
        "baselines" => cmd_baselines(&args),
        "simulate" => cmd_simulate(&args),
        "serve" => cmd_serve(&args),
        "sweep" => cmd_sweep(&args),
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
