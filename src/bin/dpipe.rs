//! `dpipe` — command-line front end for the DiffusionPipe planner.
//!
//! ```text
//! dpipe plan --model sd --machines 1 --gpus 8 --batch 256 [--no-fill] [--no-partial] [--timeline]
//! dpipe models
//! dpipe baselines --model controlnet --machines 4 --batch 1024
//! ```

use diffusionpipe::baselines::{ddp, gpipe, spp, zero3};
use diffusionpipe::core::{generate_instructions, BackbonePartition, Planner, PlannerOptions};
use diffusionpipe::partition::SearchSpace;
use diffusionpipe::prelude::*;
use diffusionpipe::schedule::render_timeline;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
dpipe — DiffusionPipe planner (MLSys 2024 reproduction)

USAGE:
  dpipe models
      List the model zoo.
  dpipe plan --model <name> [--machines N] [--gpus-per-machine N]
             [--batch N] [--no-fill] [--no-partial] [--timeline]
             [--instructions]
      Plan training and print the chosen configuration.
  dpipe baselines --model <name> [--machines N] [--gpus-per-machine N]
             [--batch N]
      Compare DiffusionPipe against DDP / ZeRO-3 / GPipe / SPP.

Models: sd, controlnet, cdm-lsun, cdm-imagenet, dit, sdxl, imagen
";

fn model_by_name(name: &str) -> Option<ModelSpec> {
    Some(match name {
        "sd" | "stable-diffusion" => zoo::stable_diffusion_v2_1(),
        "controlnet" => zoo::controlnet_v1_0(),
        "cdm-lsun" => zoo::cdm_lsun(),
        "cdm-imagenet" => zoo::cdm_imagenet(),
        "dit" => zoo::dit_xl_2(),
        "sdxl" => zoo::sdxl_base(),
        "imagen" => zoo::imagen_base(),
        _ => return None,
    })
}

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(name.to_owned(), argv[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { flags, switches }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn cluster_from(args: &Args) -> ClusterSpec {
    let machines: usize = args.get("machines", 1);
    let gpus: usize = args.get("gpus-per-machine", 8);
    ClusterSpec {
        devices_per_machine: gpus,
        ..ClusterSpec::p4de(machines.max(1))
    }
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "name", "backbones", "train params", "frozen params", "frozen L"
    );
    for name in [
        "sd",
        "controlnet",
        "cdm-lsun",
        "cdm-imagenet",
        "dit",
        "sdxl",
        "imagen",
    ] {
        let m = model_by_name(name).expect("known name");
        println!(
            "{:<14} {:>10} {:>11.2}B {:>11.2}B {:>10}",
            name,
            m.backbones().count(),
            m.trainable_param_count() as f64 / 1e9,
            m.frozen_param_count() as f64 / 1e9,
            m.num_frozen_layers()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_plan(args: &Args) -> ExitCode {
    let Some(model) = args.flags.get("model").and_then(|n| model_by_name(n)) else {
        eprintln!("unknown or missing --model; run `dpipe models`");
        return ExitCode::FAILURE;
    };
    let cluster = cluster_from(args);
    let batch: u32 = args.get("batch", 32 * cluster.world_size() as u32);
    let options = PlannerOptions {
        bubble_filling: !args.has("no-fill"),
        partial_batch: !args.has("no-partial"),
    };
    let planner = Planner::new(model, cluster.clone()).with_options(options);
    let plan = match planner.plan(batch) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("plan for batch {batch} on {} GPUs:", cluster.world_size());
    println!("  {}", plan.summary());
    match &plan.partition {
        BackbonePartition::Single(p) => {
            for (i, s) in p.stages.iter().enumerate() {
                println!(
                    "  stage {i}: layers {:?} x{} (offsets {:?})",
                    s.layers, s.replication, s.device_offsets
                );
            }
        }
        BackbonePartition::Bidirectional(bi) => {
            println!(
                "  down: {:?}",
                bi.down
                    .stages
                    .iter()
                    .map(|s| s.layers.clone())
                    .collect::<Vec<_>>()
            );
            println!(
                "  up  : {:?}",
                bi.up
                    .stages
                    .iter()
                    .map(|s| s.layers.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
    println!(
        "  fill: {:.0} ms in bubbles / {:.0} ms tail / ratio {:.0}%",
        plan.fill.filled_time() * 1e3,
        plan.fill.leftover_time * 1e3,
        plan.fill.fill_ratio() * 100.0
    );
    if args.has("timeline") && plan.hyper.num_stages > 1 {
        println!("\n{}", render_timeline(&plan.schedule, 100));
    }
    if args.has("instructions") {
        let streams = generate_instructions(&plan);
        for (slot, prog) in streams.iter().enumerate() {
            println!("\ndevice slot {slot} ({} instructions):", prog.len());
            for instr in prog.iter().take(12) {
                println!("  {instr:?}");
            }
            if prog.len() > 12 {
                println!("  ... {} more", prog.len() - 12);
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_baselines(args: &Args) -> ExitCode {
    let Some(model) = args.flags.get("model").and_then(|n| model_by_name(n)) else {
        eprintln!("unknown or missing --model; run `dpipe models`");
        return ExitCode::FAILURE;
    };
    let cluster = cluster_from(args);
    let batch: u32 = args.get("batch", 32 * cluster.world_size() as u32);
    let plan = Planner::new(model.clone(), cluster.clone()).plan(batch);
    let db = Profiler::new(DeviceModel::a100_like())
        .with_world_size(cluster.world_size())
        .profile(&model, batch)
        .0;
    println!("{:<16} {:>12} {:>10}", "system", "samples/s", "bubbles");
    if let Ok(p) = &plan {
        println!(
            "{:<16} {:>12.1} {:>9.1}%",
            "diffusionpipe",
            p.throughput,
            p.bubble_ratio * 100.0
        );
    }
    if let Some((bb, _)) = model.backbones().next().map(|(id, c)| (id, c.name.clone())) {
        if let Ok(r) = spp(&db, &cluster, bb, batch, &SearchSpace::default()) {
            println!(
                "{:<16} {:>12.1} {:>9.1}%",
                r.name,
                r.throughput,
                r.bubble_ratio * 100.0
            );
        }
        if let Ok(r) = gpipe(&db, &cluster, bb, batch, 2, 4) {
            println!(
                "{:<16} {:>12.1} {:>9.1}%",
                r.name,
                r.throughput,
                r.bubble_ratio * 100.0
            );
        }
    }
    let r = ddp(&db, &cluster, batch);
    println!(
        "{:<16} {:>12.1} {:>9.1}%",
        r.name,
        r.throughput,
        r.bubble_ratio * 100.0
    );
    let r = zero3(&db, &cluster, batch);
    println!(
        "{:<16} {:>12.1} {:>9.1}%",
        r.name,
        r.throughput,
        r.bubble_ratio * 100.0
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "models" => cmd_models(),
        "plan" => cmd_plan(&args),
        "baselines" => cmd_baselines(&args),
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
