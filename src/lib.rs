//! # DiffusionPipe (Rust reproduction)
//!
//! Pipeline-parallel training of large diffusion models with pipeline-bubble
//! filling, reproducing *"DiffusionPipe: Training Large Diffusion Models
//! with Efficient Pipelines"* (MLSys 2024).
//!
//! Diffusion models have a trainable backbone (U-Net / DiT) and a large
//! *frozen* part (text/image encoders). DiffusionPipe pipelines the backbone
//! across devices and fills the resulting pipeline bubbles with the frozen
//! part's forward computation of the *next* iteration, nearly eliminating
//! idle time while remaining mathematically equivalent to synchronous
//! data-parallel training.
//!
//! This workspace substitutes the paper's 64×A100 testbed with calibrated
//! analytical cost models and a deterministic simulator, plus a real
//! multi-threaded execution engine over a CPU tensor substrate that
//! validates the equivalence claim numerically. See `DESIGN.md` for the
//! substitution table and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! Planning inputs are one declarative, versioned, JSON-round-trippable
//! value: [`PlanSpec`](crate::spec::PlanSpec). The planner, the serving
//! layer, sweeps, the CLI (`dpipe plan --spec`) and the bench harness all
//! consume exactly this type.
//!
//! ```
//! use diffusionpipe::prelude::*;
//!
//! // Plan Stable Diffusion v2.1 training on one 8-GPU machine.
//! let spec = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 256);
//! let plan = Planner::plan_spec(&spec).unwrap();
//! println!("{}", plan.summary());
//! assert!(plan.bubble_ratio < 0.10);
//!
//! // The spec round-trips through JSON byte-stably, so every run is
//! // reproducible as data (`dpipe plan --emit-spec | dpipe plan --spec -`).
//! let reloaded = PlanSpec::from_json(&spec.to_json()).unwrap();
//! assert_eq!(reloaded, spec);
//! assert_eq!(Planner::plan_spec(&reloaded).unwrap().summary(), plan.summary());
//! ```
//!
//! The imperative builder is still available (and is what the spec path
//! drives internally): `Planner::new(model, cluster).with_options(..)
//! .plan(batch)` produces byte-identical plans.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`model`] | `dpipe-model` | model structure + zoo |
//! | [`cluster`] | `dpipe-cluster` | topology + comm costs |
//! | [`profile`] | `dpipe-profile` | layer profiler |
//! | [`partition`] | `dpipe-partition` | §4 dynamic programming |
//! | [`schedule`] | `dpipe-schedule` | 1F1B/GPipe/bidirectional schedules |
//! | [`fill`] | `dpipe-fill` | §5 bubble filling |
//! | [`sim`] | `dpipe-sim` | iteration simulation |
//! | [`tensor`] | `dpipe-tensor` | CPU tensor substrate |
//! | [`engine`] | `dpipe-engine` | threaded back-end + equivalence |
//! | [`baselines`] | `dpipe-baselines` | DDP / ZeRO-3 / GPipe / SPP |
//! | [`core`] | `diffusionpipe-core` | the planner |
//! | [`spec`] | `dpipe-spec` | declarative PlanSpec/SweepSpec + JSON |
//! | [`serve`] | `dpipe-serve` | concurrent planning service + sweeps |
//! | [`http`] | `dpipe-http` | HTTP/1.1 frontend (`dpipe serve --listen`) |
//! | [`trace`] | `dpipe-trace` | structured tracing (Chrome trace export) |

pub use diffusionpipe_core as core;
pub use dpipe_baselines as baselines;
pub use dpipe_cluster as cluster;
pub use dpipe_engine as engine;
pub use dpipe_fill as fill;
pub use dpipe_http as http;
pub use dpipe_model as model;
pub use dpipe_partition as partition;
pub use dpipe_profile as profile;
pub use dpipe_schedule as schedule;
pub use dpipe_serve as serve;
pub use dpipe_sim as sim;
pub use dpipe_spec as spec;
pub use dpipe_tensor as tensor;
pub use dpipe_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::cluster::{ClusterSpec, DataParallelLayout, DeviceClass, DeviceId};
    pub use crate::core::{BackbonePartition, Plan, PlanError, Planner, PlannerOptions};
    pub use crate::fill::{FillConfig, Filler};
    pub use crate::http::{HttpClient, HttpServer, ServerConfig};
    pub use crate::model::{zoo, ModelSpec};
    pub use crate::partition::{PartitionConfig, Partitioner, SearchSpace};
    pub use crate::profile::{DeviceModel, ProfileDb, Profiler};
    pub use crate::schedule::{ScheduleBuilder, ScheduleKind};
    pub use crate::serve::{PlanRequest, PlanService, ServiceConfig, SweepGrid, SweepReport};
    pub use crate::sim::CombinedIteration;
    pub use crate::spec::{
        json, ClusterAxis, ModelRef, PlanSpec, SpecError, SweepSpec, SCHEMA_VERSION,
    };
    pub use crate::trace::{Trace, Tracer};
}
