//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate accepts `#[derive(Serialize, Deserialize)]` (including `#[serde(…)]`
//! field attributes) and expands to nothing. The sibling `serde` shim
//! provides blanket trait impls, so bounds like `T: Serialize` still hold.
//! Swapping in the real serde is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
