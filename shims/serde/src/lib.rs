//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides just
//! enough of serde's surface for the workspace to compile: the two trait
//! names and the derive macros. The derives expand to nothing and the traits
//! are blanket-implemented for every type, so `#[derive(Serialize)]` and
//! `T: Serialize` bounds both work. No actual serialization is performed;
//! replace the `[patch]`-free path dependency with the real `serde` when the
//! environment gains network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
