//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length distribution for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is uniform over `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a [`VecStrategy`].
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0.0f64..1.0, 2..6);
        let mut rng = TestRng::for_test("vec_respects_size_range");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
