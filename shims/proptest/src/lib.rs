//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(…)]`),
//! * [`strategy::Strategy`] with `prop_map`, range / tuple / `any` /
//!   [`collection::vec`] strategies,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! * [`test_runner::ProptestConfig`] with a pinned case count and a
//!   failure-persistence path.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with its case number and the deterministic seed. Every test's RNG is
//! seeded from the test's module path and name (plus the optional
//! `PROPTEST_RNG_SEED` environment variable), so runs are reproducible in
//! CI by construction.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` that samples its strategies `config.cases` times
/// from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
                let __strategy = ($($strat,)+);
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__err) if __err.is_rejection() => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err(__err) => {
                            $crate::test_runner::persist_failure(&__config, __test_name, __case);
                            panic!(
                                "proptest {} failed at case {}/{} (seed {}): {}",
                                __test_name,
                                __case,
                                __config.cases,
                                $crate::test_runner::TestRng::seed_for(__test_name),
                                __err,
                            );
                        }
                    }
                }
                if __config.cases > 0 && __rejected == __config.cases {
                    panic!(
                        "proptest {}: all {} cases were rejected by prop_assume!; \
                         the property was never exercised (vacuous test)",
                        __test_name, __config.cases,
                    );
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Discards the current case unless the assumption holds. The real
/// proptest resamples a replacement; this fixed-case runner counts the
/// rejection instead, and the test panics as vacuous if *every* case is
/// rejected, so a property can never silently stop being exercised.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
