//! Test configuration, deterministic RNG, and failure reporting.

use std::path::PathBuf;

/// Per-test configuration, mirroring the fields of proptest's
/// `ProptestConfig` that the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Directory where failing case numbers are recorded, if any.
    pub failure_persistence: Option<PathBuf>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            failure_persistence: Some(PathBuf::from("proptest-regressions")),
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a pinned case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// Overrides the failure-persistence directory.
    pub fn with_failure_persistence(mut self, dir: impl Into<PathBuf>) -> Self {
        self.failure_persistence = Some(dir.into());
        self
    }
}

/// A failed or rejected test case. Failures abort the test; rejections
/// (from `prop_assume!` or [`TestCaseError::reject`]) discard the case,
/// and a test whose every case is rejected is reported as vacuous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case's inputs did not satisfy an assumption; it is discarded
    /// rather than counted as a pass or failure.
    Reject(String),
}

impl TestCaseError {
    /// A case that failed an assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A case whose inputs should be discarded, not judged.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this error discards the case instead of failing the test.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => f.write_str(msg),
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG (splitmix64) seeded from the test's name, so every
/// run — locally and in CI — draws the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a named test, honouring a `PROPTEST_RNG_SEED` override.
    pub fn for_test(name: &str) -> Self {
        TestRng {
            state: Self::seed_for(name),
        }
    }

    /// The seed [`TestRng::for_test`] uses for `name`.
    pub fn seed_for(name: &str) -> u64 {
        let base = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        // FNV-1a over the test name, mixed with the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Records a failing case number under the configured persistence
/// directory. Best-effort: IO errors are ignored so reporting never masks
/// the underlying test failure.
pub fn persist_failure(config: &ProptestConfig, test_name: &str, case: u32) {
    let Some(dir) = &config.failure_persistence else {
        return;
    };
    let file = test_name.replace("::", "-");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join(format!("{file}.txt")),
        format!(
            "# proptest shim failure record\ntest = {test_name}\ncase = {case}\nseed = {}\n",
            TestRng::seed_for(test_name)
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_but_are_stable() {
        assert_eq!(TestRng::seed_for("a::b"), TestRng::seed_for("a::b"));
        assert_ne!(TestRng::seed_for("a::b"), TestRng::seed_for("a::c"));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = TestRng::for_test("next_f64_in_unit_interval");
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
