//! Value-generation strategies: uniform ranges, tuples, `any`, and
//! `prop_map` adapters.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random values of one type.
///
/// The real proptest builds lazy value *trees* to support shrinking; this
/// shim samples concrete values directly.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let v = self.start + rng.next_f64() as $ty * (self.end - self.start);
                // Rounding can land exactly on `end`; keep the bound exclusive.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_test("sampling_is_deterministic");
            (0u64..1 << 40).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..4, 0.0f64..1.0).prop_map(|(n, x)| vec![x; n]);
        let mut rng = TestRng::for_test("prop_map_and_tuples_compose");
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
