//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock harness: a short warm-up, then `sample_size` timed samples,
//! reporting the per-iteration mean and min to stdout. No statistics,
//! plots, or baselines; swap in the real criterion when crates.io is
//! reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `routine`, running a warm-up first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / self.samples as u32;
        println!(
            "    mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
            self.samples
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("{}/{}", self.name, id.id);
        f(&mut Bencher {
            samples: self.sample_size,
        });
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.id);
        f(
            &mut Bencher {
                samples: self.sample_size,
            },
            input,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks `f` as a standalone (group-less) benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("{}", id.id);
        f(&mut Bencher {
            samples: self.sample_size,
        });
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
