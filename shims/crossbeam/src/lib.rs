//! Offline stand-in for `crossbeam`, covering the `channel` API surface the
//! engine uses: unbounded mpmc channels with cloneable senders *and*
//! receivers. Implemented as a `Mutex<VecDeque>` + `Condvar` queue, so a
//! receiver blocked in `recv()` never holds the lock while parked — cloned
//! receivers can call `try_recv`/`recv` concurrently, matching crossbeam's
//! mpmc semantics (each message is delivered to exactly one receiver).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Cloneable sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends without ever blocking (the channel is unbounded). Unlike a
        /// disconnected `mpsc` channel this shim has no failure mode: the
        /// queue outlives both halves via the shared `Arc`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    /// Cloneable receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Returns immediately with a message, `Empty`, or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drains and returns every message currently in the channel
        /// without blocking.
        pub fn try_iter(&self) -> std::vec::IntoIter<T> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            let drained: Vec<T> = state.queue.drain(..).collect();
            drained.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx2.recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let sum: i32 = (0..100).map(|_| rx.recv().unwrap()).sum();
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn try_recv_does_not_block_behind_a_parked_recv() {
            let (tx, rx) = unbounded::<i32>();
            let rx2 = rx.clone();
            let parked = std::thread::spawn(move || rx.recv());
            // Give the parked receiver time to block inside recv().
            std::thread::sleep(std::time::Duration::from_millis(50));
            // A cloned receiver must still get an immediate answer.
            assert!(matches!(rx2.try_recv(), Err(TryRecvError::Empty)));
            tx.send(7).unwrap();
            assert_eq!(parked.join().unwrap().unwrap(), 7);
        }

        #[test]
        fn recv_errors_once_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv(), Err(RecvError));
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }
    }
}
