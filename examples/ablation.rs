//! Ablation study (paper Fig. 15): DiffusionPipe with partial-batch layers
//! disabled, and with bubble filling disabled entirely.
//!
//! Run with: `cargo run --release --example ablation`

use diffusionpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::single_node(8);
    println!(
        "{:<22} {:>10} {:>16} {:>16}",
        "model/batch", "full", "no partial-batch", "no filling"
    );
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        for batch in [256u32, 384] {
            let full = Planner::new(model.clone(), cluster.clone()).plan(batch)?;
            let no_partial = Planner::new(model.clone(), cluster.clone())
                .with_options(PlannerOptions {
                    bubble_filling: true,
                    partial_batch: false,
                })
                .plan(batch)?;
            let no_fill = Planner::new(model.clone(), cluster.clone())
                .with_options(PlannerOptions {
                    bubble_filling: false,
                    partial_batch: false,
                })
                .plan(batch)?;
            println!(
                "{:<22} {:>10.1} {:>16.1} {:>16.1}",
                format!("{name}/{batch}"),
                full.throughput,
                no_partial.throughput,
                no_fill.throughput
            );
        }
    }
    println!("\n(samples/second; expect full > no-partial > no-filling, and at batch 384");
    println!(" no-partial collapsing toward no-filling as the extra-long frozen layer");
    println!(" blocks everything behind it — the paper's Fig. 15 observation)");
    Ok(())
}
