//! Profiling-noise robustness (paper §6.2): DiffusionPipe's residual
//! unfilled bubble time comes from the gap between profiled and actual
//! layer times. This example plans from increasingly noisy profiles while
//! evaluating against the true times.
//!
//! Run with: `cargo run --release --example profiling_noise`

use diffusionpipe::prelude::*;
use diffusionpipe::profile::NoiseConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let batch = 384u32;
    let (true_db, _) = Profiler::new(DeviceModel::a100_like())
        .with_world_size(8)
        .profile(&model, batch);

    let layout = DataParallelLayout::new(&cluster, 2).unwrap();
    let bb = model.backbones().next().expect("backbone").0;
    let cfg = PartitionConfig::new(2, 1, 96.0);

    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "sigma", "bubble ratio", "fill ratio", "iter (ms)"
    );
    for sigma in [0.0, 0.01, 0.03, 0.05, 0.10] {
        let noisy = true_db.clone().with_noise(NoiseConfig { sigma, seed: 7 });
        let plan = Partitioner::new(&noisy, &cluster, &layout).partition_single(bb, &cfg)?;
        // The schedule realises TRUE durations; filling decisions were made
        // from the noisy view.
        let sched = ScheduleBuilder::new(&true_db, &cluster, &layout)
            .build_single(&plan, ScheduleKind::Fifo1F1B)?;
        let bubbles = sched.bubbles(0.010);
        let fill =
            Filler::new(&noisy, FillConfig::default()).fill(&bubbles, sched.group_batch, 2)?;
        let combined = CombinedIteration::new(&sched, &bubbles, &fill);
        println!(
            "{:>7.0}% {:>13.1}% {:>13.1}% {:>12.0}",
            sigma * 100.0,
            combined.bubble_ratio() * 100.0,
            fill.fill_ratio() * 100.0,
            combined.iteration_time() * 1e3
        );
    }
    println!("\n(residual bubbles grow mildly with profiling error — the paper's §6.2");
    println!(" explanation for why its measured bubble ratio is not exactly zero)");
    Ok(())
}
