//! Numerical equivalence of cross-iteration pipelining (paper §3.2): trains
//! the same synthetic frozen-encoder + backbone task three ways — pipeline
//! engine with 1F1B micro-batching and frozen prefetch, pipeline + data
//! parallelism, and a single-device reference — and compares trajectories.
//!
//! Run with: `cargo run --release --example equivalence`

use diffusionpipe::engine::{EngineConfig, PipelineEngine, ReferenceTrainer, SyntheticTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = SyntheticTask::new(2, 16, 32, 2024);
    let iterations = 10;

    let mut reference = ReferenceTrainer::new(&task, 4, 4, 0.05);
    let ref_losses = reference.train(&task, iterations);

    let pipe = PipelineEngine::train(
        &task,
        &EngineConfig {
            stage_layers: vec![1, 1, 1, 1],
            micro_batches: 4,
            dp_groups: 1,
            lr: 0.05,
            optimizer: None,
        },
        iterations,
    )?;

    let hybrid = PipelineEngine::train(
        &task,
        &EngineConfig {
            stage_layers: vec![2, 2],
            micro_batches: 2,
            dp_groups: 2,
            lr: 0.05,
            optimizer: None,
        },
        iterations,
    )?;

    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "iter", "reference", "4-stage pipe", "2-stage x2-DP"
    );
    for (i, ((r, p), h)) in ref_losses
        .iter()
        .zip(&pipe.losses)
        .zip(&hybrid.losses)
        .enumerate()
    {
        println!("{i:<6} {r:>14.8} {p:>14.8} {h:>14.8}");
    }

    let max_diff = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    };
    let d_pipe = max_diff(&reference.params(), &pipe.final_params);
    let d_hybrid = max_diff(&reference.params(), &hybrid.final_params);
    println!("\nmax |param difference| after {iterations} iterations:");
    println!("  4-stage pipeline vs reference : {d_pipe:.2e}");
    println!("  2-stage x 2-group vs reference: {d_hybrid:.2e}");
    assert!(d_pipe < 1e-3 && d_hybrid < 1e-3, "trajectories diverged");
    println!("\ncross-iteration pipelining is numerically equivalent to DP training ✓");
    Ok(())
}
