//! Parallel configuration sweep through the planning service.
//!
//! Fans an 8-point grid (2 models × 2 GPU counts × 2 batch sizes) across a
//! 4-worker [`PlanService`], prints the ranked report and the best plan per
//! model, then re-runs the same grid warm to demonstrate the sharded plan
//! cache: 100% hits, byte-identical summaries.
//!
//! ```sh
//! cargo run --release --example sweep
//! ```

use diffusionpipe::prelude::*;
use std::time::Instant;

fn main() {
    let grid = SweepGrid::new(
        vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
        vec![4, 8],
        vec![64, 128],
    );
    let service = PlanService::new(ServiceConfig::with_workers(4));
    println!(
        "sweeping {} grid points with {} workers...\n",
        grid.len(),
        service.worker_count()
    );

    let t0 = Instant::now();
    let cold = grid.run(&service).expect("static grid resolves");
    let cold_s = t0.elapsed().as_secs_f64();
    print!("{}", cold.render_text());
    println!(
        "\ncold sweep: {:.2}s ({:.1} plans/s)",
        cold_s,
        grid.len() as f64 / cold_s.max(1e-9)
    );

    println!("\nbest plan per model:");
    for p in cold.best_per_model() {
        let plan = p.outcome.as_ref().expect("best_per_model is feasible");
        println!("  {:<28} {}", p.coords(), plan.summary());
    }

    let t1 = Instant::now();
    let warm = grid.run(&service).expect("static grid resolves");
    let warm_s = t1.elapsed().as_secs_f64();
    let identical =
        cold.points
            .iter()
            .zip(&warm.points)
            .all(|(c, w)| match (&c.outcome, &w.outcome) {
                (Ok(cp), Ok(wp)) => cp.summary() == wp.summary(),
                (Err(ce), Err(we)) => ce == we,
                _ => false,
            });
    let stats = service.cache_stats();
    println!(
        "\nwarm re-run: {:.3}s, {:.0}% cache hits, byte-identical: {}",
        warm_s,
        warm.cache_hit_rate() * 100.0,
        if identical { "yes" } else { "NO" }
    );
    println!(
        "cache: {} entries, {} hits / {} lookups",
        stats.entries,
        stats.hits,
        stats.hits + stats.misses
    );
    assert!(identical, "warm plans must be byte-identical to cold plans");
    assert_eq!(warm.cache_hit_rate(), 1.0, "warm re-run must be 100% hits");
}
