//! Quickstart: plan ControlNet v1.0 training on one 8-GPU machine and
//! print what DiffusionPipe decided. ControlNet's frozen part is ~90% of
//! its trainable time (Table 1), so bubble filling shines even at a single
//! node; try `zoo::stable_diffusion_v2_1()` to see the planner fall back to
//! an overlap-only layout when pipelining has nothing to win.
//!
//! Run with: `cargo run --release --example quickstart`

use diffusionpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    println!(
        "planning {} on {} GPUs (batch 384)...",
        model.name,
        cluster.world_size()
    );

    let plan = Planner::new(model, cluster.clone()).plan(384)?;

    println!("\nbest configuration: {}", plan.summary());
    println!(
        "data parallel degree: {}",
        plan.data_parallel_degree(cluster.world_size())
    );

    match &plan.partition {
        BackbonePartition::Single(p) => {
            println!("\nbackbone partition ({} stages):", p.stages.len());
            for (i, s) in p.stages.iter().enumerate() {
                println!(
                    "  stage {i}: layers {:>2}..{:>2}  x{} replicas (chain offsets {:?})",
                    s.layers.start, s.layers.end, s.replication, s.device_offsets
                );
            }
        }
        BackbonePartition::Bidirectional(_) => unreachable!("ControlNet has one backbone"),
    }

    println!("\nbubble filling:");
    println!("  bubbles considered : {}", plan.fill.bubbles.len());
    println!(
        "  filled time        : {:.1} ms of frozen work placed in bubbles",
        plan.fill.filled_time() * 1e3
    );
    println!(
        "  leftover tail      : {:.1} ms (runs after the pipeline)",
        plan.fill.leftover_time * 1e3
    );
    println!(
        "  fill ratio         : {:.1}% of bubble device-seconds recovered",
        plan.fill.fill_ratio() * 100.0
    );
    println!(
        "\npre-processing: profiling {:.1}s (simulated, parallel), partitioning {:.2}s, filling {:.2}s",
        plan.preprocessing.profiling_seconds,
        plan.preprocessing.partition_seconds,
        plan.preprocessing.fill_seconds
    );
    Ok(())
}
