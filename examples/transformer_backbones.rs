//! Extension targets from the paper's conclusion: transformer backbones
//! (DiT) and frozen-encoder-heavy multimodal models (Imagen's T5-XXL,
//! SDXL's dual text encoders).
//!
//! Run with: `cargo run --release --example transformer_backbones`

use diffusionpipe::prelude::*;
use diffusionpipe::schedule::render_timeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four machines: at this scale gradient synchronisation makes pure data
    // parallelism expensive and pipelining pays off.
    let cluster = ClusterSpec::p4de(4);

    for (model, batch) in [
        (zoo::dit_xl_2(), 1024u32),
        (zoo::sdxl_base(), 512),
        (zoo::imagen_base(), 2048),
    ] {
        let name = model.name.clone();
        let frozen_layers = model.num_frozen_layers();
        let plan = Planner::new(model, cluster.clone()).plan(batch)?;
        println!(
            "\n=== {name} (batch {batch}, {} GPUs) ===",
            cluster.world_size()
        );
        println!("  {}", plan.summary());
        println!(
            "  frozen part: {} layers, {:.0} ms placed in bubbles, {:.0} ms leftover tail",
            frozen_layers,
            plan.fill.filled_time() * 1e3,
            plan.fill.leftover_time * 1e3
        );
        if plan.hyper.num_stages > 1 {
            println!("\n  backbone pipeline timeline:");
            for line in render_timeline(&plan.schedule, 96).lines() {
                println!("  {line}");
            }
        }
    }
    println!("\n(T5-XXL's forward rivals the Imagen backbone's training step, so nearly");
    println!(" every pipeline bubble gets filled — the extreme case of the paper's idea)");
    Ok(())
}
