//! Planning purely from data: load a committed `PlanSpec` JSON file,
//! validate it, plan it, and show the canonical round trip that makes any
//! run reproducible (`spec -> json -> spec` is identity, byte-stably).
//!
//! ```sh
//! cargo run --release --example plan_from_spec
//! ```

use diffusionpipe::prelude::*;

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/sd_mixed_a100_h100_b256.json"
    );
    let text = std::fs::read_to_string(path).expect("committed spec file");
    let spec = PlanSpec::from_json(&text).expect("spec parses");
    spec.validate().expect("spec validates");
    println!("loaded {}: {}", path, spec.label());

    // The canonical encoding is byte-stable: parse -> re-encode -> parse
    // reproduces the same spec and the same fingerprint.
    let reencoded = spec.to_json();
    let back = PlanSpec::from_json(&reencoded).expect("canonical form parses");
    assert_eq!(back, spec);
    assert_eq!(
        back.fingerprint().unwrap(),
        spec.fingerprint().unwrap(),
        "fingerprint must survive the round trip"
    );
    println!(
        "round trip ok, fingerprint {:016x}",
        spec.fingerprint().unwrap()
    );

    // One call plans the whole document; the result is byte-identical to
    // wiring the same knobs through Planner::new().with_*().
    let plan = Planner::plan_spec(&spec).expect("plan");
    println!("{}", plan.summary());

    let manual = Planner::new(zoo::stable_diffusion_v2_1(), spec.cluster.clone())
        .with_options(spec.options)
        .with_search_space(spec.search)
        .with_parallelism(spec.effective_parallelism())
        .plan(spec.global_batch)
        .expect("builder path plans");
    assert_eq!(plan.summary(), manual.summary());
    println!("spec path == builder path: byte-identical");
}
