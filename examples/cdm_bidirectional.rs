//! Cascaded diffusion model training with bidirectional pipelines: both
//! CDM-LSUN backbones share one device chain, pipelining in opposite
//! directions (paper §4.2 / Fig. 3).
//!
//! Run with: `cargo run --release --example cdm_bidirectional`

use diffusionpipe::baselines::{cdm_data_parallel, CdmMode};
use diffusionpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::cdm_lsun();
    let cluster = ClusterSpec::single_node(8);
    let batch = 256; // per backbone

    let plan = Planner::new(model.clone(), cluster.clone()).plan(batch)?;
    println!("DiffusionPipe (bidirectional): {}", plan.summary());

    if let BackbonePartition::Bidirectional(bi) = &plan.partition {
        println!("\ndown pipeline (base64, chain offsets ascending):");
        for (i, s) in bi.down.stages.iter().enumerate() {
            println!(
                "  stage {i}: layers {:?} at offsets {:?}",
                s.layers, s.device_offsets
            );
        }
        println!("up pipeline (sr128, chain offsets descending):");
        for (i, s) in bi.up.stages.iter().enumerate() {
            println!(
                "  stage {i}: layers {:?} at offsets {:?}",
                s.layers, s.device_offsets
            );
        }
    }

    let db = Planner::new(model.clone(), cluster.clone()).profile(batch);
    let ds_s = cdm_data_parallel(&db, &cluster, batch, CdmMode::Sequential, false);
    let ds_p = cdm_data_parallel(&db, &cluster, batch, CdmMode::Parallel, false);
    let z3_s = cdm_data_parallel(&db, &cluster, batch, CdmMode::Sequential, true);
    let z3_p = cdm_data_parallel(&db, &cluster, batch, CdmMode::Parallel, true);

    println!("\nthroughput (samples/s, both backbones, batch {batch} each):");
    println!("  diffusionpipe      : {:>8.1}", plan.throughput);
    for r in [&ds_s, &ds_p, &z3_s, &z3_p] {
        println!(
            "  {:<19}: {:>8.1}{}",
            r.name,
            r.throughput,
            if r.oom { "  (OOM)" } else { "" }
        );
    }
    println!(
        "\npeak memory: diffusionpipe {:.1} GiB vs deepspeed-p {:.1} GiB",
        plan.peak_memory_bytes as f64 / (1u64 << 30) as f64,
        ds_p.peak_memory_bytes as f64 / (1u64 << 30) as f64
    );
    println!("(the paper finds DiffusionPipe comparable to DeepSpeed-P in speed on CDMs,");
    println!(" but able to reach larger batch sizes thanks to micro-batched activations)");
    Ok(())
}
