//! ControlNet v1.0 scaling study: DiffusionPipe against every baseline from
//! 8 to 64 GPUs — a miniature of the paper's Fig. 13b.
//!
//! Run with: `cargo run --release --example controlnet_scaling`

use diffusionpipe::baselines::{ddp, gpipe, spp, zero3};
use diffusionpipe::partition::SearchSpace;
use diffusionpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::controlnet_v1_0();
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "GPUs", "batch", "dpipe", "spp", "gpipe", "deepspeed", "zero3"
    );

    for machines in [1usize, 2, 4, 8] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        let batch = 32 * world as u32; // local batch 32
        let plan = Planner::new(model.clone(), cluster.clone()).plan(batch)?;

        let db = Planner::new(model.clone(), cluster.clone()).profile(batch);
        let bb = model.backbones().next().expect("backbone").0;
        let r_spp = spp(&db, &cluster, bb, batch, &SearchSpace::default())
            .map(|r| r.throughput)
            .unwrap_or(0.0);
        let r_gpipe = gpipe(&db, &cluster, bb, batch, 2, 4)
            .map(|r| r.throughput)
            .unwrap_or(0.0);
        let r_ddp = ddp(&db, &cluster, batch).throughput;
        let r_z3 = zero3(&db, &cluster, batch).throughput;

        println!(
            "{:<10} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            world, batch, plan.throughput, r_spp, r_gpipe, r_ddp, r_z3
        );
    }
    println!("\n(throughput in samples/second; DiffusionPipe should lead or tie everywhere,");
    println!(" with the data-parallel gap widening as synchronisation grows with scale)");
    Ok(())
}
