//! Heterogeneity-aware planning walkthrough: mixed-GPU clusters end to end.
//!
//! Plans ControlNet on a homogeneous 2×8 A100 cluster and on the same shape
//! with one machine swapped for an H100 box, then on an inference-class
//! (A10G, 24 GB) fleet. Shows how the partitioner skews layers toward the
//! faster devices, how per-class memory limits reshape the feasible space,
//! and how serve-cache fingerprints keep the fleets distinct.
//!
//! ```sh
//! cargo run --release --example hetero
//! ```

use diffusionpipe::prelude::*;

fn describe(label: &str, cluster: &ClusterSpec, plan: &Plan) {
    println!("{label}: {}", plan.summary());
    if let BackbonePartition::Single(p) = &plan.partition {
        for (i, s) in p.stages.iter().enumerate() {
            let gpus: Vec<String> = s
                .device_offsets
                .iter()
                .map(|&o| {
                    let m = o / cluster.devices_per_machine.max(1);
                    cluster
                        .class_of_machine(diffusionpipe::cluster::MachineId(m))
                        .name
                })
                .collect();
            println!(
                "    stage {i}: {} layers x{} on {:?}",
                s.layers.len(),
                s.replication,
                gpus
            );
        }
    }
}

fn main() {
    let model = zoo::controlnet_v1_0();
    let batch = 256;

    // 1. The paper's homogeneous testbed shape: 2 machines x 8 A100.
    let homo = ClusterSpec::p4de(2);
    let homo_plan = Planner::new(model.clone(), homo.clone())
        .plan(batch)
        .expect("homogeneous plan");
    describe("homogeneous 16x a100", &homo, &homo_plan);

    // 2. Swap one machine for H100s: the DP sees the second half of every
    //    16-wide pipeline chain running ~2.2x faster and rebalances layers
    //    toward it (and the whole config search re-ranks).
    let mixed = ClusterSpec::mixed(&[(DeviceClass::a100(), 1), (DeviceClass::h100(), 1)]);
    let mixed_plan = Planner::new(model.clone(), mixed.clone())
        .plan(batch)
        .expect("mixed plan");
    describe("\nmixed 8x a100 + 8x h100", &mixed, &mixed_plan);
    println!(
        "    throughput {:.1} -> {:.1} samples/s ({:+.1}%)",
        homo_plan.throughput,
        mixed_plan.throughput,
        (mixed_plan.throughput / homo_plan.throughput - 1.0) * 100.0
    );

    // 3. An inference-class fleet: A10G boxes have 24 GB and a PCIe-class
    //    intra-node fabric, so memory-hungry single-stage configs drop out
    //    and the planner leans harder on pipelining.
    let a10g = ClusterSpec::mixed(&[(DeviceClass::a10g(), 2)]);
    match Planner::new(model.clone(), a10g.clone()).plan(batch) {
        Ok(plan) => {
            describe("\ninference fleet 16x a10g", &a10g, &plan);
            assert!(plan.peak_memory_bytes <= DeviceClass::a10g().memory_bytes);
            println!(
                "    peak memory {:.1} GiB fits the 24 GiB budget",
                plan.peak_memory_bytes as f64 / (1u64 << 30) as f64
            );
        }
        Err(e) => println!("\ninference fleet 16x a10g: infeasible ({e})"),
    }

    // 4. Serve-cache keys: the mixed fleet must never hit a homogeneous
    //    cache entry (and vice versa).
    let homo_key = PlanRequest::new(model.clone(), homo, batch).fingerprint();
    let mixed_key = PlanRequest::new(model, mixed, batch).fingerprint();
    assert_ne!(homo_key, mixed_key);
    println!("\nserve cache keys: homogeneous {homo_key:016x} != mixed {mixed_key:016x}");
}
